//! Convex hulls (ST_ConvexHull).
//!
//! Table 1 of the paper classifies ST_ConvexHull as a periodically
//! flushing transducer whose processing state is a shape: hulls of point
//! subsets can be merged by hulling the union of their vertices, which
//! is exactly how the transducer's associative merge is realised
//! (`convex_hull(hull_a ∪ hull_b)`).

use crate::point::Point;
use crate::polygon::Ring;

/// Computes the convex hull of a point set with Andrew's monotone chain
/// (O(n log n)). Returns a counter-clockwise [`Ring`] without collinear
/// interior vertices; degenerate inputs (< 3 distinct non-collinear
/// points) yield a ring with fewer than 3 vertices.
pub fn convex_hull(points: &[Point]) -> Ring {
    let mut pts: Vec<Point> = points.iter().copied().filter(Point::is_finite).collect();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return Ring::new(pts);
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && hull[hull.len() - 2].cross(&hull[hull.len() - 1], &p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && hull[hull.len() - 2].cross(&hull[hull.len() - 1], &p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // Last point equals the first.
    Ring::new(hull)
}

/// Associative merge of two hulls: the hull of their combined vertex
/// sets. This is the ⊗ operation of the ST_ConvexHull transducer.
pub fn merge_hulls(a: &Ring, b: &Ring) -> Ring {
    let mut pts = Vec::with_capacity(a.len() + b.len());
    pts.extend_from_slice(&a.points);
    pts.extend_from_slice(&b.points);
    convex_hull(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0), // interior
            Point::new(0.5, 0.5), // interior
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(h.is_ccw());
        assert_eq!(h.area(), 4.0);
    }

    #[test]
    fn hull_removes_collinear_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0), // collinear on bottom edge
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::ORIGIN]).len(), 1);
        let two = convex_hull(&[Point::ORIGIN, Point::new(1.0, 1.0)]);
        assert_eq!(two.len(), 2);
        // All collinear.
        let col = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert!(col.len() <= 2, "collinear set has no 2-D hull");
    }

    #[test]
    fn duplicate_points_are_ignored() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn merge_matches_hull_of_union() {
        let a: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, (i * i % 7) as f64))
            .collect();
        let b: Vec<Point> = (0..10)
            .map(|i| Point::new(-(i as f64), (i * 3 % 5) as f64))
            .collect();
        let ha = convex_hull(&a);
        let hb = convex_hull(&b);
        let merged = merge_hulls(&ha, &hb);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = convex_hull(&all);
        assert_eq!(merged.area(), direct.area());
        assert_eq!(merged.len(), direct.len());
    }

    fn arb_points() -> impl Strategy<Value = Vec<Point>> {
        prop::collection::vec(
            (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)),
            3..60,
        )
    }

    proptest! {
        #[test]
        fn hull_contains_all_points(pts in arb_points()) {
            let h = convex_hull(&pts);
            if h.len() >= 3 {
                for p in &pts {
                    prop_assert!(h.contains_point(p), "{p} outside hull");
                }
            }
        }

        #[test]
        fn hull_is_convex(pts in arb_points()) {
            let h = convex_hull(&pts);
            if h.len() >= 3 {
                let n = h.len();
                for i in 0..n {
                    let a = h.points[i];
                    let b = h.points[(i + 1) % n];
                    let c = h.points[(i + 2) % n];
                    prop_assert!(a.cross(&b, &c) > 0.0, "non-left turn at {i}");
                }
            }
        }

        #[test]
        fn hull_is_idempotent(pts in arb_points()) {
            let h1 = convex_hull(&pts);
            let h2 = convex_hull(&h1.points);
            prop_assert_eq!(h1.len(), h2.len());
            prop_assert!((h1.area() - h2.area()).abs() < 1e-9);
        }

        #[test]
        fn merge_is_commutative(a in arb_points(), b in arb_points()) {
            let ha = convex_hull(&a);
            let hb = convex_hull(&b);
            let m1 = merge_hulls(&ha, &hb);
            let m2 = merge_hulls(&hb, &ha);
            prop_assert!((m1.area() - m2.area()).abs() < 1e-9);
        }

        #[test]
        fn merge_is_associative_in_area(
            a in arb_points(), b in arb_points(), c in arb_points()
        ) {
            let (ha, hb, hc) = (convex_hull(&a), convex_hull(&b), convex_hull(&c));
            let left = merge_hulls(&merge_hulls(&ha, &hb), &hc);
            let right = merge_hulls(&ha, &merge_hulls(&hb, &hc));
            prop_assert!((left.area() - right.area()).abs() < 1e-9);
        }
    }
}
