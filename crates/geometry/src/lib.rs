//! Planar and spherical geometry substrate for AT-GIS.
//!
//! This crate replaces the role Boost::Geometry plays in the original
//! AT-GIS prototype (Ogden et al., SIGMOD 2016). It provides:
//!
//! * primitive types ([`Point`], [`Mbr`], [`Segment`], [`Ring`],
//!   [`Polygon`], [`MultiPolygon`], [`Geometry`]) matching the OGC Simple
//!   Feature Access hierarchy the paper queries over (§2.1);
//! * spatial predicates (`intersects`, `contains`, `within`, `touches`,
//!   `crosses`, `overlaps`, `disjoint`, DE-9IM `relate`) used by the
//!   Table 1 operator catalogue;
//! * measures (area, perimeter, distance) in both planar and spherical
//!   coordinate systems, including Andoyer's more accurate geodesic
//!   formula used by the Fig. 13b experiment;
//! * set-theoretic operations (intersection, union, difference,
//!   symmetric difference, buffer) on polygons;
//! * convex hulls, envelopes, boundaries and simplicity tests.
//!
//! All algorithms are written to be *edge-streamable* where the paper
//! requires it: predicates that Table 1 classifies as "in shape"
//! associative expose incremental edge-at-a-time state so they can be
//! wrapped in periodically flushing transducers.
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the geometry support crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod boundary;
pub mod hull;
pub mod mbr;
pub mod measures;
pub mod point;
pub mod polygon;
pub mod relate;
pub mod segment;
pub mod setops;
pub mod sphere;

pub use boundary::{boundary, is_simple};
pub use hull::convex_hull;
pub use mbr::Mbr;
pub use measures::{perimeter, planar_area, signed_ring_area, DistanceModel};
pub use point::Point;
pub use polygon::{Geometry, LineString, MultiPolygon, Polygon, Ring};
pub use relate::{
    contains, crosses, disjoint, distance, intersects, overlaps, relate, touches, within, De9Im,
    IntersectionMatrix,
};
pub use segment::{segment_intersection, segments_intersect, Orientation, Segment};
pub use setops::{buffer, difference, intersection, sym_difference, union};
