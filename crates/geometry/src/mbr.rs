//! Minimum bounding rectangles (MBRs).
//!
//! The paper's processing pipelines compute an MBR per geometry with a
//! periodically flushing transducer (§3.3, "Polygon bounding" example)
//! and use MBRs for partitioning, join candidate generation and the
//! column-scan baseline. MBR union is the associative aggregation the
//! transducer relies on, so [`Mbr::union`] together with [`Mbr::EMPTY`]
//! forms a commutative monoid — property-tested below.

use crate::point::Point;

/// An axis-aligned minimum bounding rectangle.
///
/// The *empty* MBR (containing no points) is represented with inverted
/// infinite bounds so that `union` with it is an identity operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    /// Minimum x (west edge).
    pub min_x: f64,
    /// Minimum y (south edge).
    pub min_y: f64,
    /// Maximum x (east edge).
    pub max_x: f64,
    /// Maximum y (north edge).
    pub max_y: f64,
}

impl Default for Mbr {
    fn default() -> Self {
        Mbr::EMPTY
    }
}

impl Mbr {
    /// The identity element of [`Mbr::union`]: a box containing nothing.
    pub const EMPTY: Mbr = Mbr {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates an MBR from explicit bounds. `min_*` must not exceed
    /// `max_*` for a non-empty box; no normalisation is performed.
    #[inline]
    pub const fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Mbr {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate MBR covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Mbr::new(p.x, p.y, p.x, p.y)
    }

    /// Smallest MBR covering all `points`; [`Mbr::EMPTY`] when empty.
    pub fn from_points(points: &[Point]) -> Self {
        points.iter().fold(Mbr::EMPTY, |acc, p| acc.expanded_to(*p))
    }

    /// True when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width (`max_x - min_x`); zero for empty boxes.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height (`max_y - min_y`); zero for empty boxes.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area of the box; zero for empty or degenerate boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Semi-perimeter (`width + height`), the R-tree insertion margin
    /// metric.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point; meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// The associative, commutative union of two boxes.
    #[inline]
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the box in place to cover `p`. The incremental step used by
    /// the MBR-bounding flushing transducer.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Like [`Mbr::expand`] but by value.
    #[inline]
    pub fn expanded_to(mut self, p: Point) -> Mbr {
        self.expand(p);
        self
    }

    /// True when the boxes share at least one point (closed-interval
    /// semantics: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &Mbr) -> Option<Mbr> {
        if !self.intersects(other) {
            return None;
        }
        Some(Mbr {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when `other` lies entirely inside or on the boundary of
    /// `self`. The empty box is contained in everything.
    #[inline]
    pub fn contains(&self, other: &Mbr) -> bool {
        other.is_empty()
            || (other.min_x >= self.min_x
                && other.max_x <= self.max_x
                && other.min_y >= self.min_y
                && other.max_y <= self.max_y)
    }

    /// Corner points in counter-clockwise order starting at
    /// `(min_x, min_y)`. Useful for turning boxes into query rings.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// Minimum planar distance from `p` to the box (zero when inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbr(a: f64, b: f64, c: f64, d: f64) -> Mbr {
        Mbr::new(a, b, c, d)
    }

    #[test]
    fn empty_is_identity_for_union() {
        let b = mbr(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Mbr::EMPTY.union(&b), b);
        assert_eq!(b.union(&Mbr::EMPTY), b);
        assert!(Mbr::EMPTY.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn union_covers_both() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, mbr(0.0, -1.0, 3.0, 1.0));
        assert!(u.contains(&a) && u.contains(&b));
    }

    #[test]
    fn intersection_of_overlapping_boxes() {
        let a = mbr(0.0, 0.0, 2.0, 2.0);
        let b = mbr(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(mbr(1.0, 1.0, 2.0, 2.0)));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn touching_edges_count_as_intersecting() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn point_queries() {
        let b = mbr(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains_point(&Point::new(1.0, 1.0)));
        assert!(b.contains_point(&Point::new(0.0, 2.0)), "boundary counts");
        assert!(!b.contains_point(&Point::new(2.1, 1.0)));
        assert_eq!(b.distance_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.distance_to_point(&Point::new(5.0, 2.0)), 3.0);
    }

    #[test]
    fn measures() {
        let b = mbr(0.0, 0.0, 2.0, 3.0);
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 3.0);
        assert_eq!(b.area(), 6.0);
        assert_eq!(b.margin(), 5.0);
        assert_eq!(b.center(), Point::new(1.0, 1.5));
        assert_eq!(Mbr::EMPTY.area(), 0.0);
    }

    #[test]
    fn from_points_covers_all_inputs() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let b = Mbr::from_points(&pts);
        assert_eq!(b, mbr(-2.0, 0.0, 3.0, 5.0));
        for p in &pts {
            assert!(b.contains_point(p));
        }
        assert!(Mbr::from_points(&[]).is_empty());
    }

    #[test]
    fn corners_are_ccw() {
        let b = mbr(0.0, 0.0, 1.0, 2.0);
        let c = b.corners();
        // Shoelace of the corner quad must be positive (CCW).
        let mut area2 = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            area2 += p.x * q.y - q.x * p.y;
        }
        assert!(area2 > 0.0);
    }

    fn arb_mbr() -> impl Strategy<Value = Mbr> {
        (
            -1000.0..1000.0f64,
            -1000.0..1000.0f64,
            0.0..100.0f64,
            0.0..100.0f64,
        )
            .prop_map(|(x, y, w, h)| Mbr::new(x, y, x + w, y + h))
    }

    proptest! {
        #[test]
        fn union_is_associative(a in arb_mbr(), b in arb_mbr(), c in arb_mbr()) {
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        }

        #[test]
        fn union_is_commutative(a in arb_mbr(), b in arb_mbr()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn union_is_idempotent(a in arb_mbr()) {
            prop_assert_eq!(a.union(&a), a);
        }

        #[test]
        fn intersection_is_subset_of_both(a in arb_mbr(), b in arb_mbr()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains(&i));
                prop_assert!(b.contains(&i));
            }
        }

        #[test]
        fn expand_then_contains(a in arb_mbr(), x in -1000.0..1000.0f64, y in -1000.0..1000.0f64) {
            let p = Point::new(x, y);
            let grown = a.expanded_to(p);
            prop_assert!(grown.contains_point(&p));
            prop_assert!(grown.contains(&a));
        }
    }
}
