//! Area, perimeter and distance measures.
//!
//! The paper's aggregation query computes total area and perimeter of
//! the selected polygons (Table 3) under a spherical coordinate system,
//! using either a cheap spherical projection or Andoyer's more accurate
//! geodesic formula (§5, Fig. 13). [`DistanceModel`] selects between the
//! planar and the two spherical models.

use crate::point::Point;
use crate::polygon::{Geometry, Polygon, Ring};
use crate::sphere;

/// Which distance computation the perimeter/area measures use.
///
/// The paper evaluates `Spherical` (default) against `Andoyer`
/// (Fig. 13b); `Planar` is used for synthetic Cartesian data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceModel {
    /// Euclidean distance on raw coordinates.
    Planar,
    /// Great-circle distance on a sphere (haversine), the paper's
    /// default "spherical projection".
    #[default]
    Spherical,
    /// Andoyer's first-order spheroidal correction — more accurate,
    /// more floating-point work (the paper's Fig. 13b configuration).
    Andoyer,
}

impl DistanceModel {
    /// Distance between two points under the model, in model-specific
    /// units (coordinate units for `Planar`, metres otherwise).
    #[inline]
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        match self {
            DistanceModel::Planar => a.distance(b),
            DistanceModel::Spherical => sphere::haversine_distance(a, b),
            DistanceModel::Andoyer => sphere::andoyer_distance(a, b),
        }
    }
}

/// Twice the signed shoelace area of a point slice interpreted as a
/// closed ring (implicit closing edge).
pub fn signed_ring_area(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        let p = points[i];
        let q = points[(i + 1) % n];
        acc += p.x * q.y - q.x * p.y;
    }
    acc * 0.5
}

/// Planar (shoelace) area of any geometry.
pub fn planar_area(g: &Geometry) -> f64 {
    g.area()
}

/// Perimeter of a geometry under the given distance model.
pub fn perimeter(g: &Geometry, model: DistanceModel) -> f64 {
    match g {
        Geometry::Point(_) => 0.0,
        Geometry::LineString(ls) => ls
            .points
            .windows(2)
            .map(|w| model.distance(&w[0], &w[1]))
            .sum(),
        Geometry::Polygon(p) => polygon_perimeter(p, model),
        Geometry::MultiPolygon(mp) => mp
            .polygons
            .iter()
            .map(|p| polygon_perimeter(p, model))
            .sum(),
        Geometry::Collection(gs) => gs.iter().map(|g| perimeter(g, model)).sum(),
    }
}

/// Perimeter of a polygon (all rings) under the given distance model.
pub fn polygon_perimeter(p: &Polygon, model: DistanceModel) -> f64 {
    ring_perimeter(&p.exterior, model)
        + p.holes
            .iter()
            .map(|h| ring_perimeter(h, model))
            .sum::<f64>()
}

/// Perimeter of one ring under the given distance model.
pub fn ring_perimeter(r: &Ring, model: DistanceModel) -> f64 {
    let n = r.points.len();
    if n < 2 {
        return 0.0;
    }
    (0..n)
        .map(|i| model.distance(&r.points[i], &r.points[(i + 1) % n]))
        .sum()
}

/// Area of a geometry under the given model: shoelace for `Planar`,
/// spherical excess (L'Huilier via Girard summation) otherwise.
pub fn area(g: &Geometry, model: DistanceModel) -> f64 {
    match model {
        DistanceModel::Planar => g.area(),
        // Andoyer refines distances, not areas; both spherical models
        // share the spherical-excess area.
        DistanceModel::Spherical | DistanceModel::Andoyer => spherical_area(g),
    }
}

fn spherical_area(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) | Geometry::LineString(_) => 0.0,
        Geometry::Polygon(p) => {
            let holes: f64 = p.holes.iter().map(|h| sphere::ring_area(&h.points)).sum();
            (sphere::ring_area(&p.exterior.points) - holes).max(0.0)
        }
        Geometry::MultiPolygon(mp) => mp
            .polygons
            .iter()
            .map(|p| spherical_area(&Geometry::Polygon(p.clone())))
            .sum(),
        Geometry::Collection(gs) => gs.iter().map(spherical_area).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::unit_square;

    #[test]
    fn planar_perimeter_matches_polygon_method() {
        let g = Geometry::Polygon(unit_square());
        assert_eq!(perimeter(&g, DistanceModel::Planar), 4.0);
    }

    #[test]
    fn signed_area_sign_tracks_winding() {
        let ccw = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        assert!(signed_ring_area(&ccw) > 0.0);
        let cw: Vec<_> = ccw.iter().rev().copied().collect();
        assert!(signed_ring_area(&cw) < 0.0);
        assert_eq!(signed_ring_area(&ccw).abs(), 0.5);
    }

    #[test]
    fn spherical_perimeter_close_to_planar_times_degree_length_at_equator() {
        // A 1-degree square at the equator: each side is ~111.2 km.
        let g = Geometry::Polygon(unit_square());
        let p = perimeter(&g, DistanceModel::Spherical);
        assert!((p - 4.0 * 111_195.0).abs() / p < 0.01, "perimeter = {p}");
    }

    #[test]
    fn andoyer_within_one_percent_of_spherical() {
        let g = Geometry::Polygon(unit_square());
        let s = perimeter(&g, DistanceModel::Spherical);
        let a = perimeter(&g, DistanceModel::Andoyer);
        assert!((s - a).abs() / s < 0.01, "spherical {s} vs andoyer {a}");
        assert_ne!(s, a, "the two models must actually differ");
    }

    #[test]
    fn spherical_area_of_unit_square_at_equator() {
        let g = Geometry::Polygon(unit_square());
        let a = area(&g, DistanceModel::Spherical);
        // ~ (111.2 km)^2, within 1%.
        let expect = 111_195.0f64 * 111_195.0;
        assert!((a - expect).abs() / expect < 0.01, "area = {a}");
    }

    #[test]
    fn degenerate_geometries_measure_zero() {
        let p = Geometry::Point(Point::new(1.0, 2.0));
        assert_eq!(perimeter(&p, DistanceModel::Spherical), 0.0);
        assert_eq!(area(&p, DistanceModel::Planar), 0.0);
        let short = Geometry::LineString(crate::polygon::LineString::new(vec![Point::ORIGIN]));
        assert_eq!(perimeter(&short, DistanceModel::Planar), 0.0);
    }

    #[test]
    fn linestring_length_under_models() {
        let ls = Geometry::LineString(crate::polygon::LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ]));
        assert_eq!(perimeter(&ls, DistanceModel::Planar), 1.0);
        let m = perimeter(&ls, DistanceModel::Spherical);
        assert!((m - 111_195.0).abs() / m < 0.01);
    }
}
