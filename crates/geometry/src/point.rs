//! 2-D point type used throughout AT-GIS.
//!
//! Coordinates are `f64` pairs. For geographic data (the paper's
//! OpenStreetMap workloads) `x` is longitude and `y` is latitude, both in
//! degrees; planar algorithms treat them as Cartesian coordinates while
//! the [`crate::sphere`] module interprets them spherically.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in 2-D space. `x` = longitude, `y` = latitude for geographic
/// datasets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (longitude in degrees for geographic data).
    pub x: f64,
    /// Vertical coordinate (latitude in degrees for geographic data).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`. Cheaper than
    /// [`Point::distance`] when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean (planar) distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// 2-D cross product of `(b - self)` and `(c - self)`.
    ///
    /// Positive when the triple `(self, b, c)` turns counter-clockwise,
    /// negative when clockwise and zero when collinear. This is the
    /// primitive underlying every orientation test in the crate.
    #[inline]
    pub fn cross(&self, b: &Point, c: &Point) -> f64 {
        (b.x - self.x) * (c.y - self.y) - (b.y - self.y) * (c.x - self.x)
    }

    /// Dot product of `(b - self)` and `(c - self)`.
    #[inline]
    pub fn dot(&self, b: &Point, c: &Point) -> f64 {
        (b.x - self.x) * (c.x - self.x) + (b.y - self.y) * (c.y - self.y)
    }

    /// Component-wise minimum, used when growing bounding boxes.
    #[inline]
    pub fn min_components(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum, used when growing bounding boxes.
    #[inline]
    pub fn max_components(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite (not NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison (x first, then y) used by hull and sweep
    /// algorithms. Total order assuming finite coordinates.
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let o = Point::ORIGIN;
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(o.cross(&east, &north) > 0.0, "ccw turn is positive");
        assert!(o.cross(&north, &east) < 0.0, "cw turn is negative");
        assert_eq!(o.cross(&east, &(east * 2.0)), 0.0, "collinear is zero");
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min_components(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max_components(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        let a = Point::new(0.0, 9.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 10.0);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
