//! The OGC Simple Feature geometry hierarchy the paper queries over:
//! linestrings, polygons, multipolygons and (recursive) collections
//! (§2.1), plus point-in-polygon testing.

use crate::mbr::Mbr;
use crate::point::Point;
use crate::segment::Segment;

/// A polyline through two or more points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString {
    /// Vertices in order.
    pub points: Vec<Point>,
}

impl LineString {
    /// Creates a linestring from its vertices.
    pub fn new(points: Vec<Point>) -> Self {
        LineString { points }
    }

    /// Iterator over consecutive segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total length of the polyline (planar).
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding box of all vertices.
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(&self.points)
    }

    /// True when first and last vertices coincide.
    pub fn is_closed(&self) -> bool {
        self.points.len() >= 2 && self.points.first() == self.points.last()
    }
}

/// A closed ring of points. By convention the closing vertex is *not*
/// duplicated: the edge from `points[n-1]` back to `points[0]` is
/// implicit. Exterior rings are stored counter-clockwise, holes
/// clockwise (normalised on construction via [`Ring::new`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ring {
    /// Vertices in order, without a duplicated closing vertex.
    pub points: Vec<Point>,
}

impl Ring {
    /// Creates a ring, dropping a duplicated closing vertex if present.
    /// Orientation is preserved; use [`Ring::normalised_ccw`] /
    /// [`Ring::normalised_cw`] to force a winding.
    pub fn new(mut points: Vec<Point>) -> Self {
        if points.len() >= 2 && points.first() == points.last() {
            points.pop();
        }
        Ring { points }
    }

    /// Number of vertices (and edges).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the ring has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over the ring's edges, including the implicit closing
    /// edge.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| Segment::new(self.points[i], self.points[(i + 1) % n]))
    }

    /// Twice the signed area (shoelace). Positive for counter-clockwise
    /// rings.
    pub fn signed_area2(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc
    }

    /// Unsigned planar area.
    pub fn area(&self) -> f64 {
        self.signed_area2().abs() * 0.5
    }

    /// Perimeter (planar).
    pub fn perimeter(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// True when wound counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area2() > 0.0
    }

    /// Returns the ring with counter-clockwise winding.
    pub fn normalised_ccw(mut self) -> Ring {
        if !self.is_ccw() && self.points.len() >= 3 {
            self.points.reverse();
        }
        self
    }

    /// Returns the ring with clockwise winding.
    pub fn normalised_cw(mut self) -> Ring {
        if self.is_ccw() {
            self.points.reverse();
        }
        self
    }

    /// Bounding box.
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(&self.points)
    }

    /// Even-odd (ray casting) point-in-ring test. Points exactly on the
    /// boundary are reported as inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        let n = self.points.len();
        if n < 3 {
            return false;
        }
        // Boundary check first: ray casting is unreliable exactly on
        // edges.
        for s in self.segments() {
            if s.contains_point(p) {
                return true;
            }
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.points[i];
            let pj = self.points[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x;
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Strict interior test: true only when `p` is inside and *not* on
    /// the boundary.
    pub fn contains_point_strict(&self, p: &Point) -> bool {
        if self.points.len() < 3 {
            return false;
        }
        for s in self.segments() {
            if s.contains_point(p) {
                return false;
            }
        }
        self.contains_point(p)
    }

    /// An arbitrary point guaranteed to lie inside the ring (used by the
    /// paper's two-way point-in-polygon containment shortcut, §3.4).
    /// Returns the centroid when it is interior, otherwise probes edge
    /// midpoint offsets.
    pub fn interior_point(&self) -> Option<Point> {
        let n = self.points.len();
        if n < 3 {
            return None;
        }
        let centroid = {
            let (sx, sy) = self
                .points
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            Point::new(sx / n as f64, sy / n as f64)
        };
        if self.contains_point_strict(&centroid) {
            return Some(centroid);
        }
        // Fall back: midpoints between the centroid and each vertex.
        for p in &self.points {
            let mid = Point::new((p.x + centroid.x) * 0.5, (p.y + centroid.y) * 0.5);
            if self.contains_point_strict(&mid) {
                return Some(mid);
            }
        }
        // Last resort: any vertex (on the boundary, still "not outside").
        self.points.first().copied()
    }
}

/// A polygon: one exterior ring plus zero or more interior rings
/// (holes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    /// Outer boundary.
    pub exterior: Ring,
    /// Holes cut out of the interior.
    pub holes: Vec<Ring>,
}

impl Polygon {
    /// Creates a polygon from an exterior ring and holes.
    pub fn new(exterior: Ring, holes: Vec<Ring>) -> Self {
        Polygon { exterior, holes }
    }

    /// Convenience constructor for a hole-free polygon from raw points.
    pub fn from_exterior(points: Vec<Point>) -> Self {
        Polygon::new(Ring::new(points), Vec::new())
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_mbr(mbr: &Mbr) -> Self {
        Polygon::from_exterior(mbr.corners().to_vec())
    }

    /// Planar area: exterior minus holes.
    pub fn area(&self) -> f64 {
        let holes: f64 = self.holes.iter().map(Ring::area).sum();
        (self.exterior.area() - holes).max(0.0)
    }

    /// Perimeter of all rings (planar).
    pub fn perimeter(&self) -> f64 {
        self.exterior.perimeter() + self.holes.iter().map(Ring::perimeter).sum::<f64>()
    }

    /// Bounding box (exterior only; holes cannot extend it).
    pub fn mbr(&self) -> Mbr {
        self.exterior.mbr()
    }

    /// True when `p` is inside the exterior and outside every hole
    /// (boundary counts as inside).
    pub fn contains_point(&self, p: &Point) -> bool {
        if !self.exterior.contains_point(p) {
            return false;
        }
        !self.holes.iter().any(|h| h.contains_point_strict(p))
    }

    /// Iterator over every edge of every ring.
    pub fn all_segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.exterior
            .segments()
            .chain(self.holes.iter().flat_map(|h| h.segments()))
    }

    /// Total number of vertices across all rings.
    pub fn num_points(&self) -> usize {
        self.exterior.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }
}

/// Multiple polygons treated as one geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon {
    /// Member polygons.
    pub polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multipolygon.
    pub fn new(polygons: Vec<Polygon>) -> Self {
        MultiPolygon { polygons }
    }

    /// Sum of member areas.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }

    /// Sum of member perimeters.
    pub fn perimeter(&self) -> f64 {
        self.polygons.iter().map(Polygon::perimeter).sum()
    }

    /// Union of member bounding boxes.
    pub fn mbr(&self) -> Mbr {
        self.polygons
            .iter()
            .fold(Mbr::EMPTY, |acc, p| acc.union(&p.mbr()))
    }

    /// True when any member contains `p`.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains_point(p))
    }
}

/// Any supported geometry. Collections may nest recursively, mirroring
/// GeoJSON's `GeometryCollection` (Listing 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// A polyline.
    LineString(LineString),
    /// A polygon with optional holes.
    Polygon(Polygon),
    /// A set of polygons.
    MultiPolygon(MultiPolygon),
    /// A recursive collection of geometries.
    Collection(Vec<Geometry>),
}

impl Geometry {
    /// Bounding box of the geometry.
    pub fn mbr(&self) -> Mbr {
        match self {
            Geometry::Point(p) => Mbr::from_point(*p),
            Geometry::LineString(ls) => ls.mbr(),
            Geometry::Polygon(p) => p.mbr(),
            Geometry::MultiPolygon(mp) => mp.mbr(),
            Geometry::Collection(gs) => gs.iter().fold(Mbr::EMPTY, |acc, g| acc.union(&g.mbr())),
        }
    }

    /// Planar area (zero for points and linestrings).
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Point(_) | Geometry::LineString(_) => 0.0,
            Geometry::Polygon(p) => p.area(),
            Geometry::MultiPolygon(mp) => mp.area(),
            Geometry::Collection(gs) => gs.iter().map(Geometry::area).sum(),
        }
    }

    /// Planar perimeter (linestring length for linestrings).
    pub fn perimeter(&self) -> f64 {
        match self {
            Geometry::Point(_) => 0.0,
            Geometry::LineString(ls) => ls.length(),
            Geometry::Polygon(p) => p.perimeter(),
            Geometry::MultiPolygon(mp) => mp.perimeter(),
            Geometry::Collection(gs) => gs.iter().map(Geometry::perimeter).sum(),
        }
    }

    /// Total vertex count.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(ls) => ls.points.len(),
            Geometry::Polygon(p) => p.num_points(),
            Geometry::MultiPolygon(mp) => mp.polygons.iter().map(Polygon::num_points).sum(),
            Geometry::Collection(gs) => gs.iter().map(Geometry::num_points).sum(),
        }
    }

    /// True when the geometry (or any nested member) contains `p`.
    pub fn contains_point(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::LineString(ls) => ls.segments().any(|s| s.contains_point(p)),
            Geometry::Polygon(poly) => poly.contains_point(p),
            Geometry::MultiPolygon(mp) => mp.contains_point(p),
            Geometry::Collection(gs) => gs.iter().any(|g| g.contains_point(p)),
        }
    }

    /// Flattens the geometry into its component polygons (recursing
    /// through collections; points/linestrings are skipped).
    pub fn polygons(&self) -> Vec<&Polygon> {
        let mut out = Vec::new();
        self.collect_polygons(&mut out);
        out
    }

    fn collect_polygons<'a>(&'a self, out: &mut Vec<&'a Polygon>) {
        match self {
            Geometry::Polygon(p) => out.push(p),
            Geometry::MultiPolygon(mp) => out.extend(mp.polygons.iter()),
            Geometry::Collection(gs) => {
                for g in gs {
                    g.collect_polygons(out);
                }
            }
            _ => {}
        }
    }

    /// Iterator over every vertex of the geometry.
    pub fn points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.num_points());
        self.collect_points(&mut out);
        out
    }

    fn collect_points(&self, out: &mut Vec<Point>) {
        match self {
            Geometry::Point(p) => out.push(*p),
            Geometry::LineString(ls) => out.extend_from_slice(&ls.points),
            Geometry::Polygon(p) => {
                out.extend_from_slice(&p.exterior.points);
                for h in &p.holes {
                    out.extend_from_slice(&h.points);
                }
            }
            Geometry::MultiPolygon(mp) => {
                for p in &mp.polygons {
                    Geometry::Polygon(p.clone()).collect_points(out);
                }
            }
            Geometry::Collection(gs) => {
                for g in gs {
                    g.collect_points(out);
                }
            }
        }
    }

    /// All edges of the geometry (empty for points).
    pub fn all_segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        match self {
            Geometry::Point(_) => {}
            Geometry::LineString(ls) => out.extend(ls.segments()),
            Geometry::Polygon(p) => out.extend(p.all_segments()),
            Geometry::MultiPolygon(mp) => {
                for p in &mp.polygons {
                    out.extend(p.all_segments());
                }
            }
            Geometry::Collection(gs) => {
                for g in gs {
                    out.extend(g.all_segments());
                }
            }
        }
        out
    }
}

/// Builds the unit square polygon `[(0,0),(1,0),(1,1),(0,1)]`, a common
/// test fixture.
pub fn unit_square() -> Polygon {
    Polygon::from_exterior(vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(0.0, 1.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::from_exterior(vec![
            Point::new(cx - half, cy - half),
            Point::new(cx + half, cy - half),
            Point::new(cx + half, cy + half),
            Point::new(cx - half, cy + half),
        ])
    }

    #[test]
    fn ring_drops_duplicate_closing_vertex() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_area_and_orientation() {
        let ccw = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert_eq!(ccw.area(), 4.0);
        assert!(ccw.is_ccw());
        let cw = ccw.clone().normalised_cw();
        assert!(!cw.is_ccw());
        assert_eq!(cw.area(), 4.0, "area is winding-independent");
        assert!(cw.normalised_ccw().is_ccw());
    }

    #[test]
    fn ring_perimeter() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert_eq!(r.perimeter(), 12.0); // 3 + 4 + 5
    }

    #[test]
    fn point_in_ring() {
        let r = square(0.0, 0.0, 1.0).exterior;
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(0.5, -0.5)));
        assert!(r.contains_point(&Point::new(1.0, 0.0)), "boundary");
        assert!(r.contains_point(&Point::new(1.0, 1.0)), "corner");
        assert!(!r.contains_point(&Point::new(1.5, 0.0)));
        assert!(!r.contains_point_strict(&Point::new(1.0, 0.0)));
        assert!(r.contains_point_strict(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn point_in_concave_ring() {
        // A "C" shape: notch cut from the right side.
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(4.0, 3.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(r.contains_point(&Point::new(0.5, 2.0)), "inside spine");
        assert!(!r.contains_point(&Point::new(3.0, 2.0)), "inside notch");
        assert!(r.contains_point(&Point::new(3.0, 0.5)), "lower arm");
    }

    #[test]
    fn polygon_with_hole() {
        let hole = Ring::new(vec![
            Point::new(0.25, 0.25),
            Point::new(0.75, 0.25),
            Point::new(0.75, 0.75),
            Point::new(0.25, 0.75),
        ]);
        let poly = Polygon::new(unit_square().exterior, vec![hole]);
        assert!((poly.area() - 0.75).abs() < 1e-12);
        assert!(poly.contains_point(&Point::new(0.1, 0.1)));
        assert!(!poly.contains_point(&Point::new(0.5, 0.5)), "in hole");
        assert!(
            poly.contains_point(&Point::new(0.25, 0.5)),
            "hole boundary belongs to polygon"
        );
        assert_eq!(poly.perimeter(), 4.0 + 2.0);
        assert_eq!(poly.num_points(), 8);
    }

    #[test]
    fn multipolygon_aggregates() {
        let mp = MultiPolygon::new(vec![square(0.0, 0.0, 1.0), square(10.0, 0.0, 0.5)]);
        assert_eq!(mp.area(), 4.0 + 1.0);
        assert_eq!(mp.perimeter(), 8.0 + 4.0);
        assert!(mp.contains_point(&Point::new(10.2, 0.2)));
        assert!(!mp.contains_point(&Point::new(5.0, 0.0)));
        let mbr = mp.mbr();
        assert_eq!(mbr.min_x, -1.0);
        assert_eq!(mbr.max_x, 10.5);
    }

    #[test]
    fn nested_collection() {
        let g = Geometry::Collection(vec![
            Geometry::Point(Point::new(5.0, 5.0)),
            Geometry::Collection(vec![Geometry::Polygon(square(0.0, 0.0, 1.0))]),
            Geometry::LineString(LineString::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
            ])),
        ]);
        assert_eq!(g.area(), 4.0);
        assert_eq!(g.num_points(), 1 + 4 + 2);
        assert_eq!(g.polygons().len(), 1);
        assert!(g.contains_point(&Point::new(5.0, 5.0)));
        assert!(g.contains_point(&Point::new(0.5, 0.5)));
        let mbr = g.mbr();
        assert_eq!(mbr.max_x, 5.0);
    }

    #[test]
    fn interior_point_is_inside() {
        let p = square(3.0, 3.0, 2.0);
        let ip = p.exterior.interior_point().unwrap();
        assert!(p.contains_point(&ip));
    }

    #[test]
    fn interior_point_concave() {
        // Centroid of this "L" falls outside; fallback probing must work.
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        let ip = r.interior_point().unwrap();
        assert!(r.contains_point(&ip));
    }

    #[test]
    fn degenerate_rings() {
        let empty = Ring::new(vec![]);
        assert_eq!(empty.area(), 0.0);
        assert!(!empty.contains_point(&Point::ORIGIN));
        let line = Ring::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(line.area(), 0.0);
    }

    #[test]
    fn linestring_properties() {
        let ls = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert_eq!(ls.length(), 7.0);
        assert!(!ls.is_closed());
        assert_eq!(ls.segments().count(), 2);
    }

    fn arb_convex_ring() -> impl Strategy<Value = Ring> {
        // Random points on a circle produce a convex CCW ring.
        (3usize..20, 0.1..100.0f64).prop_map(|(n, radius)| {
            let pts = (0..n)
                .map(|i| {
                    let theta = std::f64::consts::TAU * i as f64 / n as f64;
                    Point::new(radius * theta.cos(), radius * theta.sin())
                })
                .collect();
            Ring::new(pts)
        })
    }

    proptest! {
        #[test]
        fn convex_ring_contains_origin(r in arb_convex_ring()) {
            prop_assert!(r.contains_point(&Point::ORIGIN));
            prop_assert!(r.is_ccw());
        }

        #[test]
        fn ring_area_invariant_under_rotation_of_start(r in arb_convex_ring(), k in 0usize..10) {
            let mut rotated = r.points.clone();
            let k = k % rotated.len();
            rotated.rotate_left(k);
            let r2 = Ring::new(rotated);
            prop_assert!((r.area() - r2.area()).abs() < 1e-9);
        }

        #[test]
        fn mbr_contains_all_ring_points(r in arb_convex_ring()) {
            let mbr = r.mbr();
            for p in &r.points {
                prop_assert!(mbr.contains_point(p));
            }
        }

        #[test]
        fn vertices_are_on_boundary_not_strict_interior(r in arb_convex_ring()) {
            for p in &r.points {
                prop_assert!(r.contains_point(p));
                prop_assert!(!r.contains_point_strict(p));
            }
        }
    }
}
