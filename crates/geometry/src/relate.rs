//! Spatial relation predicates (Table 1, category ii).
//!
//! The paper implements relations between a streamed geometry and a
//! reference set with an *edge-testing* algorithm: every incoming edge
//! is tested against the reference edges, plus two point-in-polygon
//! probes to catch full containment (§3.4, ST_Intersects example). The
//! same decomposition is used here, with an incremental
//! [`EdgeRelateState`] that the periodically flushing transducers in
//! `atgis-core` wrap.

use crate::point::Point;
use crate::polygon::{Geometry, Polygon};
use crate::segment::{segments_cross_properly, segments_intersect, Segment};

/// A DE-9IM-style intersection matrix restricted to the
/// boundary/interior intersection facts the Table 1 predicates need.
///
/// `dim[i][j]` holds the dimension (-1 = empty, 0 = point, 1 = line,
/// 2 = area) of the intersection between part `i` of geometry A and
/// part `j` of geometry B, where parts are ordered interior, boundary,
/// exterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntersectionMatrix {
    /// The 3×3 dimension matrix (interior/boundary/exterior ×
    /// interior/boundary/exterior).
    pub dim: [[i8; 3]; 3],
}

/// Alias matching the familiar PostGIS name.
pub type De9Im = IntersectionMatrix;

impl IntersectionMatrix {
    /// Matrix with every entry empty.
    pub const EMPTY: IntersectionMatrix = IntersectionMatrix { dim: [[-1; 3]; 3] };

    /// Renders the matrix as the 9-character DE-9IM string
    /// (e.g. `"212101212"`), with `F` for empty entries.
    pub fn to_de9im_string(&self) -> String {
        self.dim
            .iter()
            .flatten()
            .map(|&d| match d {
                -1 => 'F',
                0 => '0',
                1 => '1',
                2 => '2',
                _ => 'T',
            })
            .collect()
    }

    /// Tests the matrix against a DE-9IM pattern such as `"T*F**F***"`.
    /// `T` = non-empty, `F` = empty, `0`/`1`/`2` = exact dimension,
    /// `*` = anything.
    pub fn matches(&self, pattern: &str) -> bool {
        debug_assert_eq!(pattern.len(), 9);
        self.dim
            .iter()
            .flatten()
            .zip(pattern.chars())
            .all(|(&d, p)| match p {
                'T' => d >= 0,
                'F' => d < 0,
                '0' => d == 0,
                '1' => d == 1,
                '2' => d == 2,
                '*' => true,
                other => panic!("invalid DE-9IM pattern char {other:?}"),
            })
    }
}

/// Incremental edge-relation state between a streamed geometry and a
/// fixed reference polygon. This is the "Bool×Bool processing state"
/// Table 1 lists for the PFT forms of ST_Intersects / ST_Within /
/// ST_Contains / ST_Overlaps: it accumulates per-edge facts and is
/// merged associatively (both fields are monotone ORs / ANDs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRelateState {
    /// Any streamed edge intersects a reference edge.
    pub any_edge_intersects: bool,
    /// Any streamed edge crosses a reference edge *properly*.
    pub any_proper_crossing: bool,
    /// Every streamed vertex so far lies inside (or on) the reference.
    pub all_vertices_inside: bool,
    /// Any streamed vertex lies strictly inside the reference.
    pub any_vertex_strictly_inside: bool,
    /// Any streamed vertex lies strictly outside the reference.
    pub any_vertex_outside: bool,
    /// First streamed vertex, kept for the paper's two-way
    /// point-in-polygon shortcut.
    pub first_vertex: Option<Point>,
}

impl Default for EdgeRelateState {
    fn default() -> Self {
        EdgeRelateState {
            any_edge_intersects: false,
            any_proper_crossing: false,
            all_vertices_inside: true,
            any_vertex_strictly_inside: false,
            any_vertex_outside: false,
            first_vertex: None,
        }
    }
}

impl EdgeRelateState {
    /// Folds one streamed edge into the state, testing it against every
    /// edge of `reference`.
    pub fn process_edge(&mut self, edge: &Segment, reference: &Polygon) {
        if self.first_vertex.is_none() {
            self.first_vertex = Some(edge.a);
        }
        for rseg in reference.all_segments() {
            if segments_intersect(edge, &rseg) {
                self.any_edge_intersects = true;
                if segments_cross_properly(edge, &rseg) {
                    self.any_proper_crossing = true;
                }
            }
        }
        for v in [edge.a, edge.b] {
            let inside = reference.contains_point(&v);
            if !inside {
                self.all_vertices_inside = false;
                self.any_vertex_outside = true;
            } else if !on_polygon_boundary(reference, &v) {
                self.any_vertex_strictly_inside = true;
            }
        }
    }

    /// Associative merge of two partial states (the AT ⊗ operation).
    /// `other` must cover the input suffix immediately following
    /// `self`'s.
    pub fn merge(&self, other: &EdgeRelateState) -> EdgeRelateState {
        EdgeRelateState {
            any_edge_intersects: self.any_edge_intersects || other.any_edge_intersects,
            any_proper_crossing: self.any_proper_crossing || other.any_proper_crossing,
            all_vertices_inside: self.all_vertices_inside && other.all_vertices_inside,
            any_vertex_strictly_inside: self.any_vertex_strictly_inside
                || other.any_vertex_strictly_inside,
            any_vertex_outside: self.any_vertex_outside || other.any_vertex_outside,
            first_vertex: self.first_vertex.or(other.first_vertex),
        }
    }

    /// Final intersects decision, completing the paper's algorithm with
    /// the reference-inside-streamed probe.
    pub fn finish_intersects(&self, streamed: &Polygon, reference: &Polygon) -> bool {
        if self.any_edge_intersects || self.any_vertex_strictly_inside || self.all_vertices_inside {
            return true;
        }
        // Reference may be entirely inside the streamed geometry: probe
        // an arbitrary reference interior point (§3.4).
        match reference.exterior.interior_point() {
            Some(ip) => streamed.contains_point(&ip),
            None => false,
        }
    }
}

fn on_polygon_boundary(p: &Polygon, v: &Point) -> bool {
    p.all_segments().any(|s| s.contains_point(v))
}

/// True when `a` and `b` share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if !a.mbr().intersects(&b.mbr()) {
        return false;
    }
    // Edge-vs-edge tests.
    let ea = a.all_segments();
    let eb = b.all_segments();
    for sa in &ea {
        for sb in &eb {
            if segments_intersect(sa, sb) {
                return true;
            }
        }
    }
    // Containment probes (either direction), per §3.4.
    if let Some(p) = first_point(a) {
        if b.contains_point(&p) {
            return true;
        }
    }
    if let Some(p) = first_point(b) {
        if a.contains_point(&p) {
            return true;
        }
    }
    // Point/point or point/shape cases with no edges.
    match (a, b) {
        (Geometry::Point(p), _) => b.contains_point(p),
        (_, Geometry::Point(p)) => a.contains_point(p),
        _ => false,
    }
}

/// True when `a` and `b` share no points.
pub fn disjoint(a: &Geometry, b: &Geometry) -> bool {
    !intersects(a, b)
}

/// True when every point of `a` lies in `b` (boundary allowed) and the
/// interiors intersect.
pub fn within(a: &Geometry, b: &Geometry) -> bool {
    if !b.mbr().contains(&a.mbr()) {
        return false;
    }
    let pts = a.points();
    if pts.is_empty() {
        return false;
    }
    if !pts.iter().all(|p| b.contains_point(p)) {
        return false;
    }
    // No edge of `a` may properly cross out of `b`.
    for sa in a.all_segments() {
        for sb in b.all_segments() {
            if segments_cross_properly(&sa, &sb) {
                return false;
            }
        }
    }
    // Edge midpoints must also be inside (vertices alone are not enough
    // for concave containers).
    a.all_segments().iter().all(|s| {
        let mid = Point::new((s.a.x + s.b.x) * 0.5, (s.a.y + s.b.y) * 0.5);
        b.contains_point(&mid)
    })
}

/// True when `b` is within `a` (the converse of [`within`]).
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    within(b, a)
}

/// True when the geometries touch only at boundaries: they intersect
/// but their interiors do not.
pub fn touches(a: &Geometry, b: &Geometry) -> bool {
    if !intersects(a, b) {
        return false;
    }
    !interiors_intersect(a, b)
}

/// True when the geometries cross: interiors intersect, but neither
/// contains the other (for area/area this means a proper boundary
/// crossing; for line/area, passing through).
pub fn crosses(a: &Geometry, b: &Geometry) -> bool {
    let ea = a.all_segments();
    let eb = b.all_segments();
    let proper = ea
        .iter()
        .any(|sa| eb.iter().any(|sb| segments_cross_properly(sa, sb)));
    proper && !within(a, b) && !within(b, a)
}

/// True when the interiors intersect, neither geometry contains the
/// other, and both contribute area outside the intersection.
pub fn overlaps(a: &Geometry, b: &Geometry) -> bool {
    if within(a, b) || within(b, a) {
        return false;
    }
    if !interiors_intersect(a, b) {
        return false;
    }
    // Both must also have a point outside the other.
    has_point_outside(a, b) && has_point_outside(b, a)
}

fn interiors_intersect(a: &Geometry, b: &Geometry) -> bool {
    // Proper edge crossing implies interior intersection for areal
    // geometries.
    let ea = a.all_segments();
    let eb = b.all_segments();
    if ea
        .iter()
        .any(|sa| eb.iter().any(|sb| segments_cross_properly(sa, sb)))
    {
        return true;
    }
    // A strictly-interior vertex of either in the other.
    let strictly_inside = |pts: &[Point], g: &Geometry| {
        pts.iter()
            .any(|p| g.contains_point(p) && !on_geometry_boundary(g, p))
    };
    if strictly_inside(&a.points(), b) || strictly_inside(&b.points(), a) {
        return true;
    }
    // Interior probe points (handles equal geometries / full
    // containment with all vertices on boundaries).
    for poly in a.polygons() {
        if let Some(ip) = poly.exterior.interior_point() {
            if poly.contains_point(&ip) && b.contains_point(&ip) && !on_geometry_boundary(b, &ip) {
                return true;
            }
        }
    }
    for poly in b.polygons() {
        if let Some(ip) = poly.exterior.interior_point() {
            if poly.contains_point(&ip) && a.contains_point(&ip) && !on_geometry_boundary(a, &ip) {
                return true;
            }
        }
    }
    false
}

fn on_geometry_boundary(g: &Geometry, p: &Point) -> bool {
    g.all_segments().iter().any(|s| s.contains_point(p))
}

fn has_point_outside(a: &Geometry, b: &Geometry) -> bool {
    a.points().iter().any(|p| !b.contains_point(p))
}

fn first_point(g: &Geometry) -> Option<Point> {
    g.points().first().copied()
}

/// Minimum planar distance between two geometries (ST_Distance): zero
/// when they intersect, otherwise the smallest edge-to-edge /
/// point-to-edge separation. Edge-streamable: Table 1 classifies it as
/// a PFT over edges with a running `Float` minimum, which is exactly a
/// fold of [`crate::segment::Segment::distance_to_segment`].
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    if intersects(a, b) {
        return 0.0;
    }
    let ea = a.all_segments();
    let eb = b.all_segments();
    let mut best = f64::INFINITY;
    match (ea.is_empty(), eb.is_empty()) {
        (true, true) => {
            // Point/point (or empty) geometries.
            for p in a.points() {
                for q in b.points() {
                    best = best.min(p.distance(&q));
                }
            }
        }
        (true, false) => {
            for p in a.points() {
                for s in &eb {
                    best = best.min(s.distance_to_point(&p));
                }
            }
        }
        (false, true) => {
            for q in b.points() {
                for s in &ea {
                    best = best.min(s.distance_to_point(&q));
                }
            }
        }
        (false, false) => {
            for sa in &ea {
                for sb in &eb {
                    best = best.min(sa.distance_to_segment(sb));
                }
            }
        }
    }
    best
}

/// Computes the (simplified) DE-9IM intersection matrix between two
/// areal geometries. Dimensions are approximated from the predicate
/// facts; exterior/exterior is always 2.
pub fn relate(a: &Geometry, b: &Geometry) -> IntersectionMatrix {
    let mut m = IntersectionMatrix::EMPTY;
    m.dim[2][2] = 2; // Exteriors always intersect for bounded geometries.

    let inter = intersects(a, b);
    let ii = interiors_intersect(a, b);
    let a_in_b = within(a, b);
    let b_in_a = within(b, a);

    if ii {
        m.dim[0][0] = 2;
    }
    if inter {
        // Boundary/boundary contact: any edge intersection.
        let eb = b.all_segments();
        let edge_touch = a
            .all_segments()
            .iter()
            .any(|sa| eb.iter().any(|sb| segments_intersect(sa, sb)));
        if edge_touch {
            let proper = a
                .all_segments()
                .iter()
                .any(|sa| eb.iter().any(|sb| segments_cross_properly(sa, sb)));
            // Proper crossings meet at points (dim 0); shared edges give
            // dim 1. We report the stronger (1) only when a collinear
            // overlap exists.
            let collinear_overlap = a.all_segments().iter().any(|sa| {
                eb.iter().any(|sb| {
                    segments_intersect(sa, sb)
                        && !segments_cross_properly(sa, sb)
                        && sa.contains_point(&sb.a)
                        && sa.contains_point(&sb.b)
                })
            });
            m.dim[1][1] = if collinear_overlap {
                1
            } else if proper || edge_touch {
                0
            } else {
                -1
            };
        }
    }
    if !a_in_b {
        // Part of A's interior lies in B's exterior.
        if has_point_outside(a, b) || !inter {
            m.dim[0][2] = 2;
            m.dim[1][2] = 1;
        }
    } else {
        m.dim[0][0] = 2; // A inside B forces interior/interior.
    }
    if !b_in_a {
        if has_point_outside(b, a) || !inter {
            m.dim[2][0] = 2;
            m.dim[2][1] = 1;
        }
    } else {
        m.dim[0][0] = 2;
    }
    if ii {
        // Boundary of A against interior of B and vice versa.
        if !a_in_b || b_in_a {
            // Approximation: boundaries pass through interiors whenever
            // the shapes properly overlap.
        }
        let eb_in_b_interior = a
            .points()
            .iter()
            .any(|p| b.contains_point(p) && !on_geometry_boundary(b, p));
        if eb_in_b_interior {
            m.dim[1][0] = 1;
        }
        let ea_in_a_interior = b
            .points()
            .iter()
            .any(|p| a.contains_point(p) && !on_geometry_boundary(a, p));
        if ea_in_a_interior {
            m.dim[0][1] = 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::{unit_square, Polygon};

    fn square(x0: f64, y0: f64, size: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_exterior(vec![
            Point::new(x0, y0),
            Point::new(x0 + size, y0),
            Point::new(x0 + size, y0 + size),
            Point::new(x0, y0 + size),
        ]))
    }

    #[test]
    fn overlapping_squares_intersect() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        assert!(intersects(&a, &b));
        assert!(!disjoint(&a, &b));
        assert!(overlaps(&a, &b));
        assert!(!within(&a, &b));
        assert!(!touches(&a, &b));
        assert!(crosses(&a, &b) || overlaps(&a, &b));
    }

    #[test]
    fn distant_squares_are_disjoint() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert!(disjoint(&a, &b));
        assert!(!intersects(&a, &b));
        assert!(!touches(&a, &b));
        assert!(!overlaps(&a, &b));
    }

    #[test]
    fn nested_squares_within_contains() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(within(&inner, &outer));
        assert!(contains(&outer, &inner));
        assert!(
            intersects(&inner, &outer),
            "containment implies intersection"
        );
        assert!(!overlaps(&inner, &outer), "containment is not overlap");
        assert!(!touches(&inner, &outer));
    }

    #[test]
    fn edge_adjacent_squares_touch() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0);
        assert!(intersects(&a, &b));
        assert!(touches(&a, &b));
        assert!(!overlaps(&a, &b));
        assert!(!within(&a, &b));
    }

    #[test]
    fn corner_touching_squares_touch() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 1.0, 1.0);
        assert!(intersects(&a, &b));
        assert!(touches(&a, &b));
        assert!(!overlaps(&a, &b));
    }

    #[test]
    fn identical_squares_are_within_each_other() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(0.0, 0.0, 1.0);
        assert!(within(&a, &b) && within(&b, &a));
        assert!(!overlaps(&a, &b));
        assert!(!touches(&a, &b), "interiors intersect");
    }

    #[test]
    fn geometry_fully_containing_reference_intersects() {
        // The §3.4 corner case: streamed polygon entirely around the
        // reference, no edge crossings.
        let big = square(0.0, 0.0, 10.0);
        let small = square(4.0, 4.0, 1.0);
        assert!(intersects(&big, &small));
        assert!(intersects(&small, &big));
    }

    #[test]
    fn point_in_polygon_intersects() {
        let a = square(0.0, 0.0, 2.0);
        let inside = Geometry::Point(Point::new(1.0, 1.0));
        let outside = Geometry::Point(Point::new(5.0, 5.0));
        assert!(intersects(&a, &inside));
        assert!(intersects(&inside, &a));
        assert!(disjoint(&a, &outside));
    }

    #[test]
    fn crossing_linestring() {
        let a = square(0.0, 0.0, 2.0);
        let line = Geometry::LineString(crate::polygon::LineString::new(vec![
            Point::new(-1.0, 1.0),
            Point::new(3.0, 1.0),
        ]));
        assert!(intersects(&a, &line));
        assert!(crosses(&line, &a));
        assert!(!within(&line, &a));
    }

    #[test]
    fn contained_linestring_is_within() {
        let a = square(0.0, 0.0, 2.0);
        let line = Geometry::LineString(crate::polygon::LineString::new(vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 1.5),
        ]));
        assert!(within(&line, &a));
        assert!(!crosses(&line, &a));
    }

    #[test]
    fn concave_containment_rejects_vertex_only_inclusion() {
        // U-shaped container: segment between the two prongs has both
        // endpoints inside but its midpoint outside the U.
        let u = Geometry::Polygon(Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(4.0, 5.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 5.0),
            Point::new(0.0, 5.0),
        ]));
        let bridging = Geometry::LineString(crate::polygon::LineString::new(vec![
            Point::new(0.5, 4.0),
            Point::new(4.5, 4.0),
        ]));
        assert!(!within(&bridging, &u), "bridge leaves the U");
    }

    #[test]
    fn de9im_string_and_patterns() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let m = relate(&a, &b);
        assert_eq!(m.to_de9im_string().len(), 9);
        assert!(m.matches("T********"), "interiors intersect");
        let far = square(10.0, 10.0, 1.0);
        let m2 = relate(&a, &far);
        assert!(m2.matches("FF*FF****"), "disjoint pattern");
    }

    #[test]
    fn distance_basics() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(3.0, 0.0, 1.0);
        assert_eq!(crate::relate::distance(&a, &b), 2.0, "edge-to-edge gap");
        let c = square(0.5, 0.5, 2.0);
        assert_eq!(crate::relate::distance(&a, &c), 0.0, "intersecting = 0");
        let p = Geometry::Point(Point::new(0.5, 5.0));
        assert_eq!(crate::relate::distance(&a, &p), 4.0, "point to edge");
        let q = Geometry::Point(Point::new(10.0, 0.0));
        let r = Geometry::Point(Point::new(13.0, 4.0));
        assert_eq!(crate::relate::distance(&q, &r), 5.0, "point to point");
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative() {
        let a = square(0.0, 0.0, 1.0);
        for other in [
            square(5.0, 5.0, 2.0),
            Geometry::Point(Point::new(-3.0, -4.0)),
            Geometry::LineString(crate::polygon::LineString::new(vec![
                Point::new(4.0, 0.0),
                Point::new(4.0, 9.0),
            ])),
        ] {
            let d1 = crate::relate::distance(&a, &other);
            let d2 = crate::relate::distance(&other, &a);
            assert!((d1 - d2).abs() < 1e-12);
            assert!(d1 >= 0.0);
        }
    }

    #[test]
    fn edge_relate_state_merge_is_associative() {
        let reference = unit_square();
        let edges = [
            Segment::new(Point::new(-1.0, 0.5), Point::new(0.5, 0.5)),
            Segment::new(Point::new(0.5, 0.5), Point::new(2.0, 0.5)),
            Segment::new(Point::new(2.0, 0.5), Point::new(2.0, 2.0)),
        ];
        // Build per-edge fragments and merge in two association orders.
        let frags: Vec<EdgeRelateState> = edges
            .iter()
            .map(|e| {
                let mut s = EdgeRelateState::default();
                s.process_edge(e, &reference);
                s
            })
            .collect();
        let left = frags[0].merge(&frags[1]).merge(&frags[2]);
        let right = frags[0].merge(&frags[1].merge(&frags[2]));
        assert_eq!(left, right);
        // And both equal the sequential fold.
        let mut seq = EdgeRelateState::default();
        for e in &edges {
            seq.process_edge(e, &reference);
        }
        assert_eq!(left, seq);
    }

    #[test]
    fn edge_relate_finish_detects_surrounding_geometry() {
        let reference = unit_square();
        // A big triangle entirely around the unit square; no crossings.
        let streamed = Polygon::from_exterior(vec![
            Point::new(-10.0, -10.0),
            Point::new(20.0, -10.0),
            Point::new(0.0, 20.0),
        ]);
        let mut st = EdgeRelateState::default();
        for e in streamed.all_segments() {
            st.process_edge(&e, &reference);
        }
        assert!(!st.any_edge_intersects);
        assert!(st.finish_intersects(&streamed, &reference));
    }
}
