//! Line segments and segment intersection predicates.
//!
//! The geometry-relation operators in the paper's Table 1 (ST_Intersects,
//! ST_Crosses, …) are implemented edge-at-a-time: each incoming edge of a
//! streamed geometry is tested against the edges of a reference set. The
//! primitives here are the building blocks of those tests.

use crate::mbr::Mbr;
use crate::point::Point;

/// Relative orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// All three points on one line.
    Collinear,
}

/// Classifies the turn direction of `(a, b, c)` with a tolerance for
/// floating-point noise scaled to the magnitude of the inputs.
#[inline]
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let v = a.cross(b, c);
    // Scale-aware epsilon: cross products of far-apart coordinates lose
    // absolute precision proportionally to the coordinate magnitudes.
    let scale = (b.x - a.x).abs() + (b.y - a.y).abs() + (c.x - a.x).abs() + (c.y - a.y).abs();
    let eps = f64::EPSILON * 16.0 * scale * scale.max(1.0);
    if v > eps {
        Orientation::Ccw
    } else if v < -eps {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The segment's bounding box.
    #[inline]
    pub fn mbr(&self) -> Mbr {
        Mbr::from_point(self.a).expanded_to(self.b)
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// True when `p` lies on the closed segment (within orientation
    /// tolerance).
    pub fn contains_point(&self, p: &Point) -> bool {
        if orientation(&self.a, &self.b, p) != Orientation::Collinear {
            return false;
        }
        p.x >= self.a.x.min(self.b.x) - f64::EPSILON
            && p.x <= self.a.x.max(self.b.x) + f64::EPSILON
            && p.y >= self.a.y.min(self.b.y) - f64::EPSILON
            && p.y <= self.a.y.max(self.b.y) + f64::EPSILON
    }

    /// Minimum distance from `p` to the closed segment.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let len_sq = self.a.distance_sq(&self.b);
        if len_sq == 0.0 {
            return self.a.distance(p);
        }
        let t = ((p.x - self.a.x) * (self.b.x - self.a.x)
            + (p.y - self.a.y) * (self.b.y - self.a.y))
            / len_sq;
        let t = t.clamp(0.0, 1.0);
        let proj = Point::new(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        );
        proj.distance(p)
    }

    /// Minimum distance between two closed segments (zero when they
    /// intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if segments_intersect(self, other) {
            return 0.0;
        }
        self.distance_to_point(&other.a)
            .min(self.distance_to_point(&other.b))
            .min(other.distance_to_point(&self.a))
            .min(other.distance_to_point(&self.b))
    }
}

/// True when the closed segments share at least one point, including
/// endpoint touches and collinear overlap. The classic four-orientation
/// test with collinear special cases.
pub fn segments_intersect(s1: &Segment, s2: &Segment) -> bool {
    let o1 = orientation(&s1.a, &s1.b, &s2.a);
    let o2 = orientation(&s1.a, &s1.b, &s2.b);
    let o3 = orientation(&s2.a, &s2.b, &s1.a);
    let o4 = orientation(&s2.a, &s2.b, &s1.b);

    if o1 != o2 && o3 != o4 && (o1 != Orientation::Collinear || o2 != Orientation::Collinear) {
        // General position: proper crossing needs strictly opposite
        // orientations on both segments. (Collinear cases fall through to
        // the on-segment checks below.)
        if o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
    }

    (o1 == Orientation::Collinear && s1.contains_point(&s2.a))
        || (o2 == Orientation::Collinear && s1.contains_point(&s2.b))
        || (o3 == Orientation::Collinear && s2.contains_point(&s1.a))
        || (o4 == Orientation::Collinear && s2.contains_point(&s1.b))
}

/// True when the segments cross at exactly one interior point of both
/// (a *proper* crossing — endpoint touches and overlaps excluded).
pub fn segments_cross_properly(s1: &Segment, s2: &Segment) -> bool {
    let o1 = orientation(&s1.a, &s1.b, &s2.a);
    let o2 = orientation(&s1.a, &s1.b, &s2.b);
    let o3 = orientation(&s2.a, &s2.b, &s1.a);
    let o4 = orientation(&s2.a, &s2.b, &s1.b);
    o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
}

/// Computes the intersection point of two properly crossing segments, or
/// of touching segments; `None` when disjoint or collinearly overlapping
/// (no unique point).
pub fn segment_intersection(s1: &Segment, s2: &Segment) -> Option<Point> {
    let d1 = s1.b - s1.a;
    let d2 = s2.b - s2.a;
    let denom = d1.x * d2.y - d1.y * d2.x;
    if denom.abs() < f64::EPSILON * 16.0 {
        return None; // Parallel or collinear.
    }
    let t = ((s2.a.x - s1.a.x) * d2.y - (s2.a.y - s1.a.y) * d2.x) / denom;
    let u = ((s2.a.x - s1.a.x) * d1.y - (s2.a.y - s1.a.y) * d1.x) / denom;
    let eps = 1e-12;
    if (-eps..=1.0 + eps).contains(&t) && (-eps..=1.0 + eps).contains(&u) {
        Some(Point::new(s1.a.x + t * d1.x, s1.a.y + t * d1.y))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing_detected() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(segments_intersect(&s1, &s2));
        assert!(segments_cross_properly(&s1, &s2));
        let p = segment_intersection(&s1, &s2).unwrap();
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_touch_intersects_but_not_properly() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(segments_intersect(&s1, &s2));
        assert!(!segments_cross_properly(&s1, &s2));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(segments_intersect(&s1, &s2));
        assert!(!segments_cross_properly(&s1, &s2));
        assert_eq!(segment_intersection(&s1, &s2), None, "no unique point");
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!segments_intersect(&s1, &s2));
    }

    #[test]
    fn parallel_segments_disjoint() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!segments_intersect(&s1, &s2));
        assert_eq!(segment_intersection(&s1, &s2), None);
    }

    #[test]
    fn t_junction_touch() {
        // s2 endpoint lies in the interior of s1.
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 1.0, 1.0);
        assert!(segments_intersect(&s1, &s2));
        assert!(!segments_cross_properly(&s1, &s2));
    }

    #[test]
    fn point_on_segment() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains_point(&Point::new(1.0, 1.0)));
        assert!(s.contains_point(&Point::new(0.0, 0.0)));
        assert!(!s.contains_point(&Point::new(3.0, 3.0)), "beyond endpoint");
        assert!(!s.contains_point(&Point::new(1.0, 1.5)));
    }

    #[test]
    fn distance_point_to_segment() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.distance_to_point(&Point::new(1.0, 1.0)), 1.0);
        assert_eq!(s.distance_to_point(&Point::new(-1.0, 0.0)), 1.0);
        assert_eq!(s.distance_to_point(&Point::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn distance_between_segments() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 2.0, 1.0, 2.0);
        assert_eq!(s1.distance_to_segment(&s2), 2.0);
        let s3 = seg(0.5, -1.0, 0.5, 1.0);
        assert_eq!(s1.distance_to_segment(&s3), 0.0, "crossing = 0");
    }

    #[test]
    fn degenerate_zero_length_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }

    proptest! {
        #[test]
        fn intersection_is_symmetric(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            cx in -100.0..100.0f64, cy in -100.0..100.0f64,
            dx in -100.0..100.0f64, dy in -100.0..100.0f64,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            prop_assert_eq!(segments_intersect(&s1, &s2), segments_intersect(&s2, &s1));
            prop_assert_eq!(
                segments_cross_properly(&s1, &s2),
                segments_cross_properly(&s2, &s1)
            );
        }

        #[test]
        fn proper_crossing_implies_intersection(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            cx in -100.0..100.0f64, cy in -100.0..100.0f64,
            dx in -100.0..100.0f64, dy in -100.0..100.0f64,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            if segments_cross_properly(&s1, &s2) {
                prop_assert!(segments_intersect(&s1, &s2));
                let p = segment_intersection(&s1, &s2);
                prop_assert!(p.is_some(), "proper crossing must yield a point");
            }
        }

        #[test]
        fn intersection_point_lies_near_both_segments(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            cx in -100.0..100.0f64, cy in -100.0..100.0f64,
            dx in -100.0..100.0f64, dy in -100.0..100.0f64,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            if let Some(p) = segment_intersection(&s1, &s2) {
                prop_assert!(s1.distance_to_point(&p) < 1e-6);
                prop_assert!(s2.distance_to_point(&p) < 1e-6);
            }
        }

        #[test]
        fn segment_distance_zero_iff_intersecting(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64,
            cx in -50.0..50.0f64, cy in -50.0..50.0f64,
            dx in -50.0..50.0f64, dy in -50.0..50.0f64,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            let d = s1.distance_to_segment(&s2);
            if segments_intersect(&s1, &s2) {
                prop_assert_eq!(d, 0.0);
            } else {
                prop_assert!(d > 0.0);
            }
        }
    }
}
