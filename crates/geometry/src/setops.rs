//! Set-theoretic polygon operations (Table 1, category iii):
//! ST_Intersection, ST_Union, ST_Difference, ST_SymDifference and
//! ST_Buffer.
//!
//! The paper classifies these as *stateless* transducers over whole
//! shapes ("between shapes" associativity) — each operation consumes
//! complete polygons, so no edge-streaming is needed. The
//! implementation uses the classic overlay recipe for simple polygons:
//!
//! 1. split every edge of A at its intersections with edges of B (and
//!    vice versa);
//! 2. classify each sub-edge as inside or outside the other polygon via
//!    a midpoint test;
//! 3. select sub-edges according to the operation (intersection keeps
//!    edges inside the other, union keeps edges outside, …);
//! 4. stitch selected edges into output rings by endpoint matching.
//!
//! Holes in inputs are not supported by the overlay (the paper's
//! workloads are hole-free OSM building/land-use polygons); degenerate
//! shared-edge inputs may produce empty output rather than panic.

use crate::point::Point;
use crate::polygon::{MultiPolygon, Polygon, Ring};
use crate::segment::{segment_intersection, Segment};

const SNAP_EPS: f64 = 1e-9;

/// One directed sub-edge produced by the splitting phase.
#[derive(Debug, Clone, Copy)]
struct SubEdge {
    a: Point,
    b: Point,
}

impl SubEdge {
    fn midpoint(&self) -> Point {
        Point::new((self.a.x + self.b.x) * 0.5, (self.a.y + self.b.y) * 0.5)
    }

    fn reversed(self) -> SubEdge {
        SubEdge {
            a: self.b,
            b: self.a,
        }
    }

    fn is_degenerate(&self) -> bool {
        self.a.distance_sq(&self.b) < SNAP_EPS * SNAP_EPS
    }
}

/// Splits every edge of `poly` at its intersection points with edges of
/// `other`, returning directed sub-edges in boundary order.
fn split_edges(poly: &Polygon, other: &Polygon) -> Vec<SubEdge> {
    let mut out = Vec::new();
    for edge in poly.exterior.segments() {
        let mut cuts: Vec<(f64, Point)> = vec![(0.0, edge.a), (1.0, edge.b)];
        for oseg in other.exterior.segments() {
            if let Some(p) = segment_intersection(&edge, &oseg) {
                let t = parametric_position(&edge, &p);
                cuts.push((t, p));
            }
        }
        cuts.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
        for w in cuts.windows(2) {
            let se = SubEdge {
                a: w[0].1,
                b: w[1].1,
            };
            if !se.is_degenerate() {
                out.push(se);
            }
        }
    }
    out
}

fn parametric_position(seg: &Segment, p: &Point) -> f64 {
    let d = seg.b - seg.a;
    if d.x.abs() >= d.y.abs() {
        if d.x.abs() < f64::EPSILON {
            0.0
        } else {
            (p.x - seg.a.x) / d.x
        }
    } else {
        (p.y - seg.a.y) / d.y
    }
}

/// Which side of the other polygon a sub-edge must be on to be kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keep {
    Inside,
    Outside,
}

fn select_edges(edges: &[SubEdge], other: &Polygon, keep: Keep) -> Vec<SubEdge> {
    edges
        .iter()
        .copied()
        .filter(|e| {
            let inside = other.contains_point(&e.midpoint());
            match keep {
                Keep::Inside => inside,
                Keep::Outside => !inside,
            }
        })
        .collect()
}

/// Stitches directed sub-edges into closed rings by greedy endpoint
/// matching (within `SNAP_EPS`). Unmatched chains are dropped.
fn stitch(mut edges: Vec<SubEdge>) -> Vec<Ring> {
    let mut rings = Vec::new();
    while let Some(start) = edges.pop() {
        let mut chain = vec![start.a, start.b];
        let mut cursor = start.b;
        loop {
            // Find an edge starting (or ending) at the cursor.
            let next_idx = edges.iter().position(|e| close(&e.a, &cursor));
            let next = match next_idx {
                Some(i) => edges.swap_remove(i),
                None => {
                    match edges.iter().position(|e| close(&e.b, &cursor)) {
                        Some(i) => edges.swap_remove(i).reversed(),
                        None => break, // Open chain: discard.
                    }
                }
            };
            cursor = next.b;
            if close(&cursor, &chain[0]) {
                // Ring closed.
                let ring = Ring::new(chain);
                if ring.len() >= 3 && ring.area() > SNAP_EPS {
                    rings.push(ring.normalised_ccw());
                }
                chain = Vec::new();
                break;
            }
            chain.push(cursor);
        }
    }
    rings
}

fn close(a: &Point, b: &Point) -> bool {
    a.distance_sq(b) < SNAP_EPS * SNAP_EPS * 1e6
}

fn overlay(a: &Polygon, b: &Polygon, keep_a: Keep, keep_b: Keep) -> MultiPolygon {
    let mut edges = select_edges(&split_edges(a, b), b, keep_a);
    edges.extend(select_edges(&split_edges(b, a), a, keep_b));
    let rings = stitch(edges);
    MultiPolygon::new(
        rings
            .into_iter()
            .map(|r| Polygon::new(r, Vec::new()))
            .collect(),
    )
}

/// ST_Intersection: the region common to both polygons. Returns an
/// empty multipolygon when disjoint; when one polygon contains the
/// other, returns the contained polygon.
pub fn intersection(a: &Polygon, b: &Polygon) -> MultiPolygon {
    if !a.mbr().intersects(&b.mbr()) {
        return MultiPolygon::default();
    }
    if polygon_within(a, b) {
        return MultiPolygon::new(vec![a.clone()]);
    }
    if polygon_within(b, a) {
        return MultiPolygon::new(vec![b.clone()]);
    }
    overlay(a, b, Keep::Inside, Keep::Inside)
}

/// ST_Union: the region covered by either polygon. Disjoint inputs are
/// returned as a two-member multipolygon.
pub fn union(a: &Polygon, b: &Polygon) -> MultiPolygon {
    if !a.mbr().intersects(&b.mbr()) {
        return MultiPolygon::new(vec![a.clone(), b.clone()]);
    }
    if polygon_within(a, b) {
        return MultiPolygon::new(vec![b.clone()]);
    }
    if polygon_within(b, a) {
        return MultiPolygon::new(vec![a.clone()]);
    }
    let result = overlay(a, b, Keep::Outside, Keep::Outside);
    if result.polygons.is_empty() {
        // Boundary-only contact defeated the overlay (no proper
        // crossings): fall back to returning both inputs.
        MultiPolygon::new(vec![a.clone(), b.clone()])
    } else {
        result
    }
}

/// ST_Difference: the part of `a` not covered by `b`.
pub fn difference(a: &Polygon, b: &Polygon) -> MultiPolygon {
    if !a.mbr().intersects(&b.mbr()) {
        return MultiPolygon::new(vec![a.clone()]);
    }
    if polygon_within(a, b) {
        return MultiPolygon::default();
    }
    if polygon_within(b, a) {
        // Subtracting a contained polygon punches a hole.
        return MultiPolygon::new(vec![Polygon::new(
            a.exterior.clone(),
            vec![b.exterior.clone().normalised_cw()],
        )]);
    }
    // Keep A-edges outside B; B-edges inside A bound the removed part.
    let mut edges = select_edges(&split_edges(a, b), b, Keep::Outside);
    edges.extend(
        select_edges(&split_edges(b, a), a, Keep::Inside)
            .into_iter()
            .map(SubEdge::reversed),
    );
    let rings = stitch(edges);
    if rings.is_empty() {
        MultiPolygon::new(vec![a.clone()])
    } else {
        MultiPolygon::new(
            rings
                .into_iter()
                .map(|r| Polygon::new(r, Vec::new()))
                .collect(),
        )
    }
}

/// ST_SymDifference: points in exactly one of the polygons.
pub fn sym_difference(a: &Polygon, b: &Polygon) -> MultiPolygon {
    let mut out = difference(a, b);
    out.polygons.extend(difference(b, a).polygons);
    out
}

fn polygon_within(inner: &Polygon, outer: &Polygon) -> bool {
    crate::relate::within(
        &crate::polygon::Geometry::Polygon(inner.clone()),
        &crate::polygon::Geometry::Polygon(outer.clone()),
    )
}

/// ST_Buffer: dilates a polygon by `distance`, approximating circular
/// arcs with `arc_segments` points per quarter turn. Exact for convex
/// inputs; concave inputs are buffered via their convex hull (a
/// documented over-approximation — the paper's workloads use buffer
/// only as a streamed per-shape transform).
pub fn buffer(p: &Polygon, distance: f64, arc_segments: usize) -> Polygon {
    assert!(distance >= 0.0, "negative buffer not supported");
    if distance == 0.0 {
        return p.clone();
    }
    let hull = crate::hull::convex_hull(&p.exterior.points);
    let pts = &hull.points;
    let n = pts.len();
    if n == 0 {
        return p.clone();
    }
    if n < 3 {
        // Degenerate: buffer around a point/segment becomes a disc /
        // capsule approximated by sampling.
        let mut out = Vec::new();
        let steps = (arc_segments.max(1)) * 4;
        for center in pts {
            for i in 0..steps {
                let theta = std::f64::consts::TAU * i as f64 / steps as f64;
                out.push(Point::new(
                    center.x + distance * theta.cos(),
                    center.y + distance * theta.sin(),
                ));
            }
        }
        return Polygon::new(crate::hull::convex_hull(&out), Vec::new());
    }

    let mut out = Vec::new();
    for i in 0..n {
        let prev = pts[(i + n - 1) % n];
        let cur = pts[i];
        let next = pts[(i + 1) % n];
        // Outward normals of the two incident edges (CCW ring: outward
        // normal of edge (a→b) is (dy, -dx) normalised... for CCW,
        // outward is to the right of travel: (dy, -dx)).
        let n1 = outward_normal(&prev, &cur);
        let n2 = outward_normal(&cur, &next);
        let a1 = n1.y.atan2(n1.x);
        let mut a2 = n2.y.atan2(n2.x);
        if a2 < a1 {
            a2 += std::f64::consts::TAU;
        }
        let span = a2 - a1;
        let steps = ((span / (std::f64::consts::FRAC_PI_2 / arc_segments.max(1) as f64)).ceil()
            as usize)
            .max(1);
        for s in 0..=steps {
            let theta = a1 + span * s as f64 / steps as f64;
            out.push(Point::new(
                cur.x + distance * theta.cos(),
                cur.y + distance * theta.sin(),
            ));
        }
    }
    Polygon::new(crate::hull::convex_hull(&out), Vec::new())
}

fn outward_normal(a: &Point, b: &Point) -> Point {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt();
    if len == 0.0 {
        Point::new(0.0, 0.0)
    } else {
        // For a CCW ring, the outward side is to the right of travel.
        Point::new(dy / len, -dx / len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::unit_square;
    use proptest::prelude::*;

    fn square(x0: f64, y0: f64, size: f64) -> Polygon {
        Polygon::from_exterior(vec![
            Point::new(x0, y0),
            Point::new(x0 + size, y0),
            Point::new(x0 + size, y0 + size),
            Point::new(x0, y0 + size),
        ])
    }

    #[test]
    fn intersection_of_overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let i = intersection(&a, &b);
        assert_eq!(i.polygons.len(), 1);
        assert!((i.area() - 1.0).abs() < 1e-9, "area = {}", i.area());
    }

    #[test]
    fn intersection_of_disjoint_squares_is_empty() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert!(intersection(&a, &b).polygons.is_empty());
    }

    #[test]
    fn intersection_with_contained_square() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(2.0, 2.0, 1.0);
        let i = intersection(&outer, &inner);
        assert!((i.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_of_overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let u = union(&a, &b);
        assert!(
            (u.area() - 7.0).abs() < 1e-9,
            "4 + 4 - 1 = 7, got {}",
            u.area()
        );
    }

    #[test]
    fn union_of_disjoint_squares_keeps_both() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        let u = union(&a, &b);
        assert_eq!(u.polygons.len(), 2);
        assert!((u.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn union_with_containment() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(2.0, 2.0, 1.0);
        let u = union(&outer, &inner);
        assert!((u.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn difference_of_overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let d = difference(&a, &b);
        assert!((d.area() - 3.0).abs() < 1e-9, "4 - 1 = 3, got {}", d.area());
    }

    #[test]
    fn difference_with_disjoint_is_identity() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        let d = difference(&a, &b);
        assert!((d.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn difference_fully_covered_is_empty() {
        let a = square(2.0, 2.0, 1.0);
        let b = square(0.0, 0.0, 10.0);
        assert!(difference(&a, &b).polygons.is_empty());
    }

    #[test]
    fn sym_difference_of_overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let s = sym_difference(&a, &b);
        assert!(
            (s.area() - 6.0).abs() < 1e-9,
            "2*(4-1) = 6, got {}",
            s.area()
        );
    }

    #[test]
    fn inclusion_exclusion_holds() {
        let a = square(0.0, 0.0, 3.0);
        let b = square(1.5, 1.5, 3.0);
        let u = union(&a, &b).area();
        let i = intersection(&a, &b).area();
        assert!((u + i - a.area() - b.area()).abs() < 1e-9);
    }

    #[test]
    fn buffer_of_square_grows_area() {
        let p = unit_square();
        let buffered = buffer(&p, 0.5, 8);
        // Area = 1 + perimeter*d + pi*d^2 = 1 + 4*0.5 + pi*0.25 ≈ 3.785.
        let expect = 1.0 + 4.0 * 0.5 + std::f64::consts::PI * 0.25;
        assert!(
            (buffered.area() - expect).abs() / expect < 0.02,
            "got {}",
            buffered.area()
        );
        // Every original vertex is strictly inside the buffer.
        for v in &p.exterior.points {
            assert!(buffered.contains_point(v));
        }
    }

    #[test]
    fn buffer_zero_is_identity() {
        let p = unit_square();
        assert_eq!(buffer(&p, 0.0, 8), p);
    }

    #[test]
    fn buffer_of_point_like_ring_is_disc() {
        let p = Polygon::from_exterior(vec![Point::new(1.0, 1.0)]);
        let b = buffer(&p, 2.0, 16);
        let expect = std::f64::consts::PI * 4.0;
        assert!(
            (b.area() - expect).abs() / expect < 0.02,
            "got {}",
            b.area()
        );
    }

    /// Offsets for `square(dx, dy, s)` against `square(0, 0, 2)` that
    /// keep the two boundaries in general position: the overlay is
    /// documented as unsupported for collinear shared edges, so we
    /// exclude configurations where any edge lines of the two squares
    /// coincide.
    fn arb_offset() -> impl Strategy<Value = (f64, f64, f64)> {
        (-1.5..1.5f64, -1.5..1.5f64, 0.5..3.0f64).prop_filter(
            "edges must not be collinear with the fixed square",
            |(dx, dy, s)| {
                let clear = |v: f64| (v - 0.0).abs() > 1e-3 && (v - 2.0).abs() > 1e-3;
                clear(*dx) && clear(*dy) && clear(dx + s) && clear(dy + s)
            },
        )
    }

    proptest! {
        #[test]
        fn intersection_area_bounded_by_inputs((dx, dy, s) in arb_offset()) {
            let a = square(0.0, 0.0, 2.0);
            let b = square(dx, dy, s);
            let i = intersection(&a, &b).area();
            prop_assert!(i <= a.area() + 1e-9);
            prop_assert!(i <= b.area() + 1e-9);
            prop_assert!(i >= 0.0);
        }

        #[test]
        fn union_area_at_least_max_input((dx, dy, s) in arb_offset()) {
            let a = square(0.0, 0.0, 2.0);
            let b = square(dx, dy, s);
            let u = union(&a, &b).area();
            prop_assert!(u >= a.area().max(b.area()) - 1e-9);
            prop_assert!(u <= a.area() + b.area() + 1e-9);
        }

        #[test]
        fn inclusion_exclusion_property((dx, dy, s) in arb_offset()) {
            let a = square(0.0, 0.0, 2.0);
            let b = square(dx, dy, s);
            let u = union(&a, &b).area();
            let i = intersection(&a, &b).area();
            prop_assert!((u + i - a.area() - b.area()).abs() < 1e-6,
                "u={u} i={i} a={} b={}", a.area(), b.area());
        }

        #[test]
        fn difference_partitions_area((dx, dy, s) in arb_offset()) {
            let a = square(0.0, 0.0, 2.0);
            let b = square(dx, dy, s);
            let d = difference(&a, &b).area();
            let i = intersection(&a, &b).area();
            prop_assert!((d + i - a.area()).abs() < 1e-6, "d={d} i={i}");
        }
    }
}
