//! Spherical and spheroidal geodesy.
//!
//! The paper performs "all of our computation using a spherical
//! coordinate system", with two linear-distance methods: a cheap
//! spherical projection (haversine great-circle distance) and the more
//! accurate, more FLOP-hungry Andoyer formula (§5, Fig. 13). Both are
//! implemented here, together with spherical polygon area by spherical
//! excess.

use crate::point::Point;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// WGS-84 semi-major axis in metres.
pub const WGS84_A: f64 = 6_378_137.0;

/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;

/// Great-circle (haversine) distance in metres between two lon/lat
/// points in degrees. This is the paper's default "spherical
/// projection" distance.
pub fn haversine_distance(a: &Point, b: &Point) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlat = (b.y - a.y).to_radians();
    let dlon = (b.x - a.x).to_radians();
    let h = (dlat * 0.5).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon * 0.5).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Andoyer's first-order flattening correction to the great-circle
/// distance (Andoyer 1909, as used by Boost::Geometry's `andoyer`
/// strategy). More accurate than haversine on the WGS-84 spheroid at the
/// cost of extra floating-point work — the property the paper's
/// Fig. 13b experiment exploits.
pub fn andoyer_distance(a: &Point, b: &Point) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlon = (b.x - a.x).to_radians();

    if dlon.abs() < 1e-15 && (lat1 - lat2).abs() < 1e-15 {
        return 0.0;
    }

    // Andoyer-Lambert first-order formula on the WGS-84 spheroid.
    let f = (lat1 + lat2) * 0.5; // Mean latitude.
    let g = (lat1 - lat2) * 0.5; // Half latitude difference.
    let l = dlon * 0.5; // Half longitude difference.

    let sin_g2 = g.sin().powi(2);
    let cos_g2 = g.cos().powi(2);
    let sin_f2 = f.sin().powi(2);
    let cos_f2 = f.cos().powi(2);
    let sin_l2 = l.sin().powi(2);
    let cos_l2 = l.cos().powi(2);

    let s = sin_g2 * cos_l2 + cos_f2 * sin_l2;
    let c = cos_g2 * cos_l2 + sin_f2 * sin_l2;
    if s == 0.0 || c == 0.0 {
        return 0.0; // Coincident (s=0) or antipodal-degenerate (c=0).
    }
    let omega = (s / c).sqrt().atan();
    let r = (s * c).sqrt() / omega;
    let d = 2.0 * omega * WGS84_A;
    let h1 = (3.0 * r - 1.0) / (2.0 * c);
    let h2 = (3.0 * r + 1.0) / (2.0 * s);
    d * (1.0 + WGS84_F * (h1 * sin_f2 * cos_g2 - h2 * cos_f2 * sin_g2))
}

/// Spherical polygon area (in m²) of a ring given as lon/lat degrees,
/// by the spherical-excess line integral (Chamberlain & Duquette 2007).
/// Winding-independent (absolute value).
pub fn ring_area(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 3 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let p = points[i];
        let q = points[(i + 1) % n];
        let lon1 = p.x.to_radians();
        let lon2 = q.x.to_radians();
        let lat1 = p.y.to_radians();
        let lat2 = q.y.to_radians();
        total += (lon2 - lon1) * (2.0 + lat1.sin() + lat2.sin());
    }
    (total * EARTH_RADIUS_M * EARTH_RADIUS_M * 0.5).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const LONDON: Point = Point::new(-0.1278, 51.5074);
    const PARIS: Point = Point::new(2.3522, 48.8566);
    const NYC: Point = Point::new(-74.0060, 40.7128);

    #[test]
    fn haversine_london_paris() {
        // Known distance ~343.5 km.
        let d = haversine_distance(&LONDON, &PARIS);
        assert!((d - 343_500.0).abs() < 2_000.0, "got {d}");
    }

    #[test]
    fn haversine_london_nyc() {
        // Known distance ~5,570 km.
        let d = haversine_distance(&LONDON, &NYC);
        assert!((d - 5_570_000.0).abs() < 20_000.0, "got {d}");
    }

    #[test]
    fn andoyer_close_to_haversine_but_different() {
        let h = haversine_distance(&LONDON, &PARIS);
        let a = andoyer_distance(&LONDON, &PARIS);
        assert!((h - a).abs() / h < 0.01, "haversine {h} vs andoyer {a}");
        assert_ne!(h, a);
    }

    #[test]
    fn zero_distance_for_identical_points() {
        assert_eq!(haversine_distance(&LONDON, &LONDON), 0.0);
        assert_eq!(andoyer_distance(&LONDON, &LONDON), 0.0);
    }

    #[test]
    fn one_degree_longitude_at_equator() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let d = haversine_distance(&a, &b);
        // 1 degree of arc on the mean sphere: 2*pi*R/360 ≈ 111.195 km.
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn one_degree_longitude_at_60n_is_half() {
        let a = Point::new(0.0, 60.0);
        let b = Point::new(1.0, 60.0);
        let d = haversine_distance(&a, &b);
        assert!((d - 111_195.0 * 0.5).abs() < 200.0, "got {d}");
    }

    #[test]
    fn ring_area_of_one_degree_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let a = ring_area(&pts);
        let expect = 111_195.0f64 * 111_195.0;
        assert!((a - expect).abs() / expect < 0.01, "got {a}");
    }

    #[test]
    fn ring_area_winding_independent() {
        let ccw = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let cw: Vec<_> = ccw.iter().rev().copied().collect();
        assert!((ring_area(&ccw) - ring_area(&cw)).abs() < 1.0);
    }

    #[test]
    fn degenerate_rings_have_zero_area() {
        assert_eq!(ring_area(&[]), 0.0);
        assert_eq!(
            ring_area(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            0.0
        );
    }

    proptest! {
        #[test]
        fn haversine_is_symmetric(
            lon1 in -179.0..179.0f64, lat1 in -89.0..89.0f64,
            lon2 in -179.0..179.0f64, lat2 in -89.0..89.0f64,
        ) {
            let a = Point::new(lon1, lat1);
            let b = Point::new(lon2, lat2);
            let d1 = haversine_distance(&a, &b);
            let d2 = haversine_distance(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn haversine_triangle_inequality(
            lon1 in -179.0..179.0f64, lat1 in -89.0..89.0f64,
            lon2 in -179.0..179.0f64, lat2 in -89.0..89.0f64,
            lon3 in -179.0..179.0f64, lat3 in -89.0..89.0f64,
        ) {
            let a = Point::new(lon1, lat1);
            let b = Point::new(lon2, lat2);
            let c = Point::new(lon3, lat3);
            let ab = haversine_distance(&a, &b);
            let bc = haversine_distance(&b, &c);
            let ac = haversine_distance(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        #[test]
        fn haversine_bounded_by_half_circumference(
            lon1 in -180.0..180.0f64, lat1 in -90.0..90.0f64,
            lon2 in -180.0..180.0f64, lat2 in -90.0..90.0f64,
        ) {
            let d = haversine_distance(&Point::new(lon1, lat1), &Point::new(lon2, lat2));
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_M + 1.0);
            prop_assert!(d >= 0.0);
        }

        #[test]
        fn andoyer_within_half_percent_of_haversine(
            lon1 in -170.0..170.0f64, lat1 in -80.0..80.0f64,
            dlon in 0.1..10.0f64, dlat in 0.1..10.0f64,
        ) {
            let a = Point::new(lon1, lat1);
            let b = Point::new(lon1 + dlon, lat1 + dlat);
            let h = haversine_distance(&a, &b);
            let an = andoyer_distance(&a, &b);
            // The spheroid differs from the sphere by < ~0.6%.
            prop_assert!((h - an).abs() / h < 0.01, "h={h} a={an}");
        }
    }
}
