//! Property tests for `atgis_geometry::relate::intersects`, checked
//! against an independently written brute-force reference: orientation
//! tests for every segment pair plus a crossing-number
//! point-in-polygon probe for containment. The library implementation
//! (edge tests + §3.4 two-way interior probes) must agree on random
//! small polygons, be symmetric, and never report an intersection
//! without MBR overlap.

use atgis_geometry::relate::{disjoint, intersects, within};
use atgis_geometry::{Geometry, Point, Polygon};
use proptest::prelude::*;

/// A small convex polygon: `n` vertices on a circle of radius `r`
/// around `(cx, cy)`, rotated by `phase`.
fn poly(cx: f64, cy: f64, r: f64, n: usize, phase: f64) -> Polygon {
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let theta = phase + std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(cx + r * theta.cos(), cy + r * theta.sin())
        })
        .collect();
    Polygon::from_exterior(pts)
}

// ---- independent reference implementation -------------------------

fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

fn on_segment(a: Point, b: Point, p: Point) -> bool {
    orient(a, b, p) == 0.0
        && p.x >= a.x.min(b.x)
        && p.x <= a.x.max(b.x)
        && p.y >= a.y.min(b.y)
        && p.y <= a.y.max(b.y)
}

/// Classic orientation-based segment intersection (with collinear
/// overlap handling) — written independently of
/// `atgis_geometry::segment`.
fn segs_intersect_brute(p1: Point, p2: Point, p3: Point, p4: Point) -> bool {
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    on_segment(p3, p4, p1)
        || on_segment(p3, p4, p2)
        || on_segment(p1, p2, p3)
        || on_segment(p1, p2, p4)
}

/// Crossing-number point-in-polygon (boundary counts as inside via an
/// explicit on-segment check).
fn point_in_poly_brute(p: Point, poly: &Polygon) -> bool {
    let pts = &poly.exterior.points;
    let n = pts.len();
    for i in 0..n {
        if on_segment(pts[i], pts[(i + 1) % n], p) {
            return true;
        }
    }
    let mut inside = false;
    for i in 0..n {
        let (a, b) = (pts[i], pts[(i + 1) % n]);
        if (a.y > p.y) != (b.y > p.y) {
            let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_at {
                inside = !inside;
            }
        }
    }
    inside
}

fn edges(p: &Polygon) -> Vec<(Point, Point)> {
    let pts = &p.exterior.points;
    (0..pts.len())
        .map(|i| (pts[i], pts[(i + 1) % pts.len()]))
        .collect()
}

/// Brute-force polygon intersection: any segment pair crosses, or one
/// polygon's vertex lies in the other (covers full containment for
/// these convex star-shaped polygons).
fn intersects_brute(a: &Polygon, b: &Polygon) -> bool {
    for (a1, a2) in edges(a) {
        for (b1, b2) in edges(b) {
            if segs_intersect_brute(a1, a2, b1, b2) {
                return true;
            }
        }
    }
    a.exterior.points.iter().any(|p| point_in_poly_brute(*p, b))
        || b.exterior.points.iter().any(|p| point_in_poly_brute(*p, a))
}

// ---- properties ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn intersects_is_symmetric(
        ax in -5.0..5.0f64, ay in -5.0..5.0f64, ar in 0.1..3.0f64,
        an in 3usize..9, ap in 0.0..1.0f64,
        bx in -5.0..5.0f64, by in -5.0..5.0f64, br in 0.1..3.0f64,
        bn in 3usize..9, bp in 0.0..1.0f64,
    ) {
        let a = Geometry::Polygon(poly(ax, ay, ar, an, ap));
        let b = Geometry::Polygon(poly(bx, by, br, bn, bp));
        prop_assert_eq!(intersects(&a, &b), intersects(&b, &a));
        prop_assert_eq!(disjoint(&a, &b), !intersects(&a, &b));
    }

    #[test]
    fn intersects_implies_mbr_overlap(
        ax in -5.0..5.0f64, ay in -5.0..5.0f64, ar in 0.1..3.0f64,
        an in 3usize..9,
        bx in -5.0..5.0f64, by in -5.0..5.0f64, br in 0.1..3.0f64,
        bn in 3usize..9,
    ) {
        let a = Geometry::Polygon(poly(ax, ay, ar, an, 0.0));
        let b = Geometry::Polygon(poly(bx, by, br, bn, 0.5));
        if intersects(&a, &b) {
            prop_assert!(a.mbr().intersects(&b.mbr()),
                "intersection without MBR overlap: {:?} {:?}", a.mbr(), b.mbr());
        }
    }

    #[test]
    fn intersects_agrees_with_brute_force(
        ax in -3.0..3.0f64, ay in -3.0..3.0f64, ar in 0.1..2.5f64,
        an in 3usize..9, ap in 0.0..1.0f64,
        bx in -3.0..3.0f64, by in -3.0..3.0f64, br in 0.1..2.5f64,
        bn in 3usize..9, bp in 0.0..1.0f64,
    ) {
        let pa = poly(ax, ay, ar, an, ap);
        let pb = poly(bx, by, br, bn, bp);
        let got = intersects(&Geometry::Polygon(pa.clone()), &Geometry::Polygon(pb.clone()));
        let want = intersects_brute(&pa, &pb);
        prop_assert_eq!(got, want, "library vs brute force on {:?} / {:?}", pa, pb);
    }

    #[test]
    fn within_implies_intersects(
        cx in -3.0..3.0f64, cy in -3.0..3.0f64,
        inner_r in 0.1..1.0f64, outer_extra in 0.5..3.0f64,
        n in 3usize..9,
    ) {
        let inner = Geometry::Polygon(poly(cx, cy, inner_r, n, 0.3));
        let outer = Geometry::Polygon(poly(cx, cy, inner_r + outer_extra, 8, 0.0));
        prop_assert!(within(&inner, &outer));
        prop_assert!(intersects(&inner, &outer));
    }
}
