//! R-tree substrate for the indexed-DBMS baseline.
//!
//! The paper compares AT-GIS against RDBMS whose spatial support rests
//! on R-trees over geometry bounding boxes (§2.3: "These index
//! structures operate on the bounding boxes of geometries, providing
//! an efficient mechanism to select possible matches"). This crate
//! provides the index those baselines pay for at load time:
//! sort-tile-recursive (STR) bulk loading for the initial build and
//! quadratic-split insertion for incremental updates.
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the R-tree support crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

use atgis_geometry::Mbr;

/// Maximum entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split.
const MIN_ENTRIES: usize = MAX_ENTRIES * 2 / 5;

/// An R-tree mapping bounding boxes to `u64` payloads (feature
/// offsets or ids).
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node {
    mbr: Mbr,
    entries: Vec<Entry>,
    is_leaf: bool,
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    /// Leaf entry: box + payload.
    Item(Mbr, u64),
    /// Inner entry: child node index.
    Child(usize),
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            nodes: vec![Node {
                mbr: Mbr::EMPTY,
                entries: Vec::new(),
                is_leaf: true,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk-loads items with the sort-tile-recursive algorithm — the
    /// standard way RDBMS build a spatial index after a full load
    /// (the load+index phase the paper's Fig. 10 baselines pay).
    pub fn bulk_load(mut items: Vec<(Mbr, u64)>) -> Self {
        if items.is_empty() {
            return RTree::new();
        }
        let mut tree = RTree {
            nodes: Vec::new(),
            root: 0,
            len: items.len(),
        };
        // STR: sort by x, tile into vertical slices, sort each slice
        // by y, pack runs of MAX_ENTRIES into leaves.
        items.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = items.len().div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = items.len().div_ceil(slice_count);
        let mut level: Vec<usize> = Vec::new();
        for slice in items.chunks_mut(slice_size.max(1)) {
            slice.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for run in slice.chunks(MAX_ENTRIES) {
                let mbr = run.iter().fold(Mbr::EMPTY, |acc, (m, _)| acc.union(m));
                let idx = tree.nodes.len();
                tree.nodes.push(Node {
                    mbr,
                    entries: run.iter().map(|&(m, id)| Entry::Item(m, id)).collect(),
                    is_leaf: true,
                });
                level.push(idx);
            }
        }
        // Pack upper levels until one root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            for group in level.chunks(MAX_ENTRIES) {
                let mbr = group
                    .iter()
                    .fold(Mbr::EMPTY, |acc, &c| acc.union(&tree.nodes[c].mbr));
                let idx = tree.nodes.len();
                tree.nodes.push(Node {
                    mbr,
                    entries: group.iter().map(|&c| Entry::Child(c)).collect(),
                    is_leaf: false,
                });
                next.push(idx);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    /// Inserts one item (R-tree insertion with quadratic split).
    pub fn insert(&mut self, mbr: Mbr, id: u64) {
        self.len += 1;
        if let Some((split_node, split_mbr)) = self.insert_at(self.root, mbr, id) {
            // Root split: grow the tree.
            let old_root = self.root;
            let old_mbr = self.nodes[old_root].mbr;
            let new_root = self.nodes.len();
            self.nodes.push(Node {
                mbr: old_mbr.union(&split_mbr),
                entries: vec![Entry::Child(old_root), Entry::Child(split_node)],
                is_leaf: false,
            });
            self.root = new_root;
        }
    }

    fn insert_at(&mut self, node: usize, mbr: Mbr, id: u64) -> Option<(usize, Mbr)> {
        self.nodes[node].mbr = self.nodes[node].mbr.union(&mbr);
        if self.nodes[node].is_leaf {
            self.nodes[node].entries.push(Entry::Item(mbr, id));
            return self.split_if_needed(node);
        }
        // Choose the child needing least enlargement.
        let mut best = usize::MAX;
        let mut best_enlargement = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for e in &self.nodes[node].entries {
            if let Entry::Child(c) = e {
                let child_mbr = self.nodes[*c].mbr;
                let enlargement = child_mbr.union(&mbr).area() - child_mbr.area();
                let area = child_mbr.area();
                if enlargement < best_enlargement
                    || (enlargement == best_enlargement && area < best_area)
                {
                    best = *c;
                    best_enlargement = enlargement;
                    best_area = area;
                }
            }
        }
        debug_assert_ne!(best, usize::MAX);
        if let Some((split, split_mbr)) = self.insert_at(best, mbr, id) {
            self.nodes[node].entries.push(Entry::Child(split));
            self.nodes[node].mbr = self.nodes[node].mbr.union(&split_mbr);
            return self.split_if_needed(node);
        }
        None
    }

    fn split_if_needed(&mut self, node: usize) -> Option<(usize, Mbr)> {
        if self.nodes[node].entries.len() <= MAX_ENTRIES {
            return None;
        }
        // Quadratic split: pick the pair of entries wasting the most
        // area as seeds, then assign greedily.
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let mbrs: Vec<Mbr> = entries.iter().map(|e| self.entry_mbr(e)).collect();
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let mut group1 = vec![s1];
        let mut group2 = vec![s2];
        let mut mbr1 = mbrs[s1];
        let mut mbr2 = mbrs[s2];
        #[allow(clippy::needless_range_loop)]
        for i in 0..entries.len() {
            if i == s1 || i == s2 {
                continue;
            }
            let remaining = entries.len() - i;
            // Force-assign to honour the minimum fill.
            if group1.len() + remaining <= MIN_ENTRIES {
                group1.push(i);
                mbr1 = mbr1.union(&mbrs[i]);
                continue;
            }
            if group2.len() + remaining <= MIN_ENTRIES {
                group2.push(i);
                mbr2 = mbr2.union(&mbrs[i]);
                continue;
            }
            let d1 = mbr1.union(&mbrs[i]).area() - mbr1.area();
            let d2 = mbr2.union(&mbrs[i]).area() - mbr2.area();
            if d1 <= d2 {
                group1.push(i);
                mbr1 = mbr1.union(&mbrs[i]);
            } else {
                group2.push(i);
                mbr2 = mbr2.union(&mbrs[i]);
            }
        }
        let is_leaf = self.nodes[node].is_leaf;
        self.nodes[node].entries = group1.iter().map(|&i| entries[i]).collect();
        self.nodes[node].mbr = mbr1;
        let new_idx = self.nodes.len();
        self.nodes.push(Node {
            mbr: mbr2,
            entries: group2.iter().map(|&i| entries[i]).collect(),
            is_leaf,
        });
        Some((new_idx, mbr2))
    }

    fn entry_mbr(&self, e: &Entry) -> Mbr {
        match e {
            Entry::Item(m, _) => *m,
            Entry::Child(c) => self.nodes[*c].mbr,
        }
    }

    /// Returns the payloads of all items whose boxes intersect
    /// `query`, in unspecified order.
    pub fn query(&self, query: &Mbr) -> Vec<u64> {
        let mut out = Vec::new();
        self.query_into(query, &mut out);
        out
    }

    /// Like [`RTree::query`] but reusing an output buffer.
    pub fn query_into(&self, query: &Mbr, out: &mut Vec<u64>) {
        if self.len == 0 {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.mbr.intersects(query) {
                continue;
            }
            for e in &node.entries {
                match e {
                    Entry::Item(m, id) => {
                        if m.intersects(query) {
                            out.push(*id);
                        }
                    }
                    Entry::Child(c) => {
                        if self.nodes[*c].mbr.intersects(query) {
                            stack.push(*c);
                        }
                    }
                }
            }
        }
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while !self.nodes[n].is_leaf {
            h += 1;
            n = match self.nodes[n].entries.first() {
                Some(Entry::Child(c)) => *c,
                _ => break,
            };
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Mbr, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| {
                let x = rng.gen_range(-100.0..100.0);
                let y = rng.gen_range(-100.0..100.0);
                let w = rng.gen_range(0.0..5.0);
                let h = rng.gen_range(0.0..5.0);
                (Mbr::new(x, y, x + w, y + h), i)
            })
            .collect()
    }

    fn brute_force(items: &[(Mbr, u64)], q: &Mbr) -> Vec<u64> {
        let mut v: Vec<u64> = items
            .iter()
            .filter(|(m, _)| m.intersects(q))
            .map(|&(_, id)| id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries_empty() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert!(t.query(&Mbr::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = random_items(500, 1);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 500);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let x = rng.gen_range(-100.0..100.0);
            let y = rng.gen_range(-100.0..100.0);
            let q = Mbr::new(x, y, x + 20.0, y + 20.0);
            let mut got = tree.query(&q);
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn incremental_insert_matches_brute_force() {
        let items = random_items(300, 2);
        let mut tree = RTree::new();
        for &(m, id) in &items {
            tree.insert(m, id);
        }
        assert_eq!(tree.len(), 300);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed + 200);
            let x = rng.gen_range(-100.0..100.0);
            let y = rng.gen_range(-100.0..100.0);
            let q = Mbr::new(x, y, x + 15.0, y + 15.0);
            let mut got = tree.query(&q);
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn bulk_load_is_balanced() {
        let tree = RTree::bulk_load(random_items(2000, 3));
        // STR packs tightly: height should be ~ log_16(125 leaves).
        assert!(tree.height() <= 4, "height = {}", tree.height());
    }

    #[test]
    fn single_item() {
        let tree = RTree::bulk_load(vec![(Mbr::new(0.0, 0.0, 1.0, 1.0), 42)]);
        assert_eq!(tree.query(&Mbr::new(0.5, 0.5, 2.0, 2.0)), vec![42]);
        assert!(tree.query(&Mbr::new(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn duplicate_boxes_all_returned() {
        let m = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let tree = RTree::bulk_load((0..50).map(|i| (m, i)).collect());
        assert_eq!(tree.query(&m).len(), 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn query_agrees_with_brute_force(
            n in 0usize..200,
            seed in 0u64..50,
            qx in -100.0..100.0f64,
            qy in -100.0..100.0f64,
            qw in 0.0..50.0f64,
            qh in 0.0..50.0f64,
        ) {
            let items = random_items(n, seed);
            let q = Mbr::new(qx, qy, qx + qw, qy + qh);
            let bulk = RTree::bulk_load(items.clone());
            let mut got = bulk.query(&q);
            got.sort_unstable();
            prop_assert_eq!(&got, &brute_force(&items, &q));

            let mut incr = RTree::new();
            for &(m, id) in &items {
                incr.insert(m, id);
            }
            let mut got2 = incr.query(&q);
            got2.sort_unstable();
            prop_assert_eq!(&got2, &brute_force(&items, &q));
        }
    }
}
