//! Two tenant classes saturating one server over loopback TCP — the
//! serving-layer demo of class-ordered admission.
//!
//! Batch tenants hammer the server with expensive self-joins while
//! interactive tenants ask for small dashboard tiles. Both share one
//! `QueryScheduler`: co-arriving requests share scans, but the wave
//! former admits every interactive wave before any batch wave, so the
//! interactive p95 stays far below the batch p95 even at saturation.
//! Batch submissions that would push queued cost over budget are shed
//! with a structured `Overloaded` and retried — backpressure in the
//! admission controller's own scan-equivalent currency.
//!
//! ```sh
//! cargo run --release --example priority_demo
//! ```

use atgis::{Dataset, Engine, Priority, QueryScheduler};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use atgis_server::{Client, ErrorCode, MetricMask, QuerySpec, Server, NO_TIMEOUT};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() {
    let objects = 6_000;
    let engine = Engine::builder()
        .threads(0)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();
    let server = Server::new(QueryScheduler::new(engine));
    server.register(
        0,
        Dataset::from_bytes(
            write_geojson(&OsmGenerator::new(81).generate(objects)),
            Format::GeoJson,
        ),
    );
    let handle = server.serve("127.0.0.1:0".parse().unwrap()).expect("bind");
    let addr = handle.addr();
    println!("serving {objects} objects on {addr}");

    let batch_tenants = 3;
    let interactive_tenants = 6;
    let start = Arc::new(Barrier::new(batch_tenants + interactive_tenants));

    let mut tenants = Vec::new();
    for t in 0..batch_tenants {
        let start = Arc::clone(&start);
        tenants.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            start.wait();
            let mut shed = 0u64;
            for round in 0..4u64 {
                // Each round a different threshold, so batch traffic
                // is never answered from the aggregate cache.
                let join = QuerySpec::Join(1_000 + 500 * round + t as u64);
                loop {
                    match client
                        .query(0, &join, Priority::Batch, NO_TIMEOUT)
                        .expect("io")
                    {
                        Ok(_) => break,
                        Err(e) if e.code == ErrorCode::Overloaded => {
                            // The structured shed signal: back off and
                            // retry, exactly what batch work should do.
                            shed += 1;
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(e) => panic!("batch tenant {t}: {e}"),
                    }
                }
            }
            shed
        }));
    }
    for t in 0..interactive_tenants {
        let start = Arc::clone(&start);
        tenants.push(std::thread::spawn(move || {
            let tiles = [
                Mbr::new(-6.0, 44.0, 4.0, 56.0),
                Mbr::new(-2.0, 48.0, 2.0, 52.0),
                Mbr::new(0.0, 50.0, 4.0, 54.0),
            ];
            let mut client = Client::connect(addr).expect("connect");
            start.wait();
            for k in 0..15usize {
                let spec = QuerySpec::Aggregation {
                    region: tiles[(k + t) % tiles.len()],
                    metrics: MetricMask::ALL,
                };
                client
                    .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
                    .expect("io")
                    .expect("interactive tile");
            }
            0u64
        }));
    }
    let shed: u64 = tenants.into_iter().map(|t| t.join().expect("tenant")).sum();

    let report = handle.stats();
    println!(
        "served {} (unique {}, dedup {}, cache {}) over {} scan passes; shed {} overloaded",
        report.served,
        report.unique,
        report.dedup_hits,
        report.cache_hits,
        report.scan_passes,
        shed
    );
    println!(
        "interactive: {:4} done  p50 {:>8} µs  p95 {:>8} µs  p99 {:>8} µs",
        report.interactive.completed,
        report.interactive.p50_us,
        report.interactive.p95_us,
        report.interactive.p99_us
    );
    println!(
        "batch:       {:4} done  p50 {:>8} µs  p95 {:>8} µs  p99 {:>8} µs",
        report.batch.completed, report.batch.p50_us, report.batch.p95_us, report.batch.p99_us
    );
    assert_eq!(
        report.interactive.completed,
        interactive_tenants as u64 * 15
    );
    assert_eq!(report.batch.completed, batch_tenants as u64 * 4);
    assert!(
        report.interactive.p95_us < report.batch.p95_us,
        "interactive p95 ({} µs) must stay below batch p95 ({} µs) under saturation",
        report.interactive.p95_us,
        report.batch.p95_us
    );
    println!(
        "interactive p95 is {:.1}x below batch p95 — class-ordered admission holding under load",
        report.batch.p95_us as f64 / report.interactive.p95_us.max(1) as f64
    );
    handle.shutdown();
}
