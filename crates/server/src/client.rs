//! A minimal blocking client for the wire protocol — what a driver
//! program, a test harness, or another process embeds to talk to a
//! running [`crate::Server`].
//!
//! ```no_run
//! use atgis_server::{Client, Priority, QuerySpec, NO_TIMEOUT};
//! use atgis_geometry::Mbr;
//!
//! let mut client = Client::connect("127.0.0.1:7878").unwrap();
//! let spec = QuerySpec::Containment(Mbr::new(-2.0, 48.0, 2.0, 52.0));
//! let reply = client
//!     .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
//!     .unwrap();
//! match reply {
//!     Ok(result) => println!("{} matches", result.matches().len()),
//!     Err(e) => eprintln!("server refused: {} ({})", e.code, e.message),
//! }
//! ```

use crate::protocol::{
    self, encode_cancel, encode_stats_request, encode_submit, ErrorCode, QuerySpec, Response,
    StatsReport, MAX_RESPONSE_FRAME,
};
use atgis::{Priority, QueryResult};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A structured refusal from the server: the wire [`ErrorCode`] plus
/// its human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail from the server.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// A blocking connection to an AT-GIS server. Request ids are
/// assigned per connection; responses can arrive out of submission
/// order (the dispatcher answers cheap waves first), so the client
/// buffers frames it reads while waiting for a specific id.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    pending: VecDeque<Response>,
}

impl Client {
    /// Connects to a serving address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            pending: VecDeque::new(),
        })
    }

    /// Submits a query without waiting; returns the request id whose
    /// [`Response`] will carry the answer. `timeout_ms` of
    /// [`protocol::NO_TIMEOUT`] means no deadline.
    pub fn submit(
        &mut self,
        dataset: u64,
        query: &QuerySpec,
        priority: Priority,
        timeout_ms: u64,
    ) -> std::io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        self.send(&encode_submit(req_id, dataset, priority, timeout_ms, query))?;
        Ok(req_id)
    }

    /// Asks the server to cancel an in-flight request. Advisory —
    /// completed requests are unaffected and produce no extra
    /// response.
    pub fn cancel(&mut self, req_id: u64) -> std::io::Result<()> {
        self.send(&encode_cancel(req_id))
    }

    /// Submits and waits for this request's outcome, buffering any
    /// other responses that arrive first.
    pub fn query(
        &mut self,
        dataset: u64,
        query: &QuerySpec,
        priority: Priority,
        timeout_ms: u64,
    ) -> std::io::Result<Result<QueryResult, ServerError>> {
        let req_id = self.submit(dataset, query, priority, timeout_ms)?;
        self.wait(req_id)
    }

    /// Waits for the response to a specific previously-submitted
    /// request id, buffering unrelated responses.
    pub fn wait(&mut self, req_id: u64) -> std::io::Result<Result<QueryResult, ServerError>> {
        // First, anything already buffered for this id.
        if let Some(pos) = self.pending.iter().position(|r| match r {
            Response::Result { req_id: id, .. } | Response::Error { req_id: id, .. } => {
                *id == req_id
            }
            Response::Stats(_) => false,
        }) {
            let resp = self.pending.remove(pos).unwrap();
            return Ok(Self::unpack(resp));
        }
        // Not buffered: read straight off the socket. (Going through
        // `read_response` here would pop the just-buffered unrelated
        // responses back out and spin forever rotating them.)
        loop {
            let resp = self.read_socket_response()?;
            match &resp {
                Response::Result { req_id: id, .. } | Response::Error { req_id: id, .. }
                    if *id == req_id =>
                {
                    return Ok(Self::unpack(resp));
                }
                _ => self.pending.push_back(resp),
            }
        }
    }

    /// Fetches the server's cumulative statistics.
    pub fn stats(&mut self) -> std::io::Result<StatsReport> {
        self.send(&encode_stats_request())?;
        // A stale buffered report (skipped by an earlier targeted
        // wait) is consumed first; otherwise read the socket directly
        // — the pending buffer holds only non-Stats frames by now.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|r| matches!(r, Response::Stats(_)))
        {
            match self.pending.remove(pos).unwrap() {
                Response::Stats(report) => return Ok(report),
                _ => unreachable!("position matched a Stats frame"),
            }
        }
        loop {
            match self.read_socket_response()? {
                Response::Stats(report) => return Ok(report),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Reads the next response frame off the wire (or the buffer of
    /// frames skipped by earlier targeted waits).
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        if let Some(buffered) = self.pending.pop_front() {
            return Ok(buffered);
        }
        self.read_socket_response()
    }

    /// Reads the next frame from the socket, bypassing the pending
    /// buffer — the loop in [`Client::wait`] / [`Client::stats`] has
    /// already scanned it.
    fn read_socket_response(&mut self) -> std::io::Result<Response> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let len = u32::from_be_bytes(len);
        if len == 0 || len > MAX_RESPONSE_FRAME {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("response frame length {len} outside (0, {MAX_RESPONSE_FRAME}]"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        protocol::parse_response(&payload)
            .map_err(|we| std::io::Error::new(ErrorKind::InvalidData, we.to_string()))
    }

    fn unpack(resp: Response) -> Result<QueryResult, ServerError> {
        match resp {
            Response::Result { result, .. } => Ok(result),
            Response::Error { code, message, .. } => Err(ServerError { code, message }),
            Response::Stats(_) => unreachable!("stats responses are filtered by the callers"),
        }
    }

    fn send(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.stream
            .write_all(&(payload.len() as u32).to_be_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.flush()
    }

    /// The underlying stream, for tests that need to write raw bytes
    /// or drop the connection abruptly.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
