//! # AT-GIS serving front end
//!
//! A std-only TCP server that turns the in-process
//! [`QueryScheduler`](atgis::QueryScheduler) into a network service —
//! the multi-user in-situ scenario the paper motivates: many tenants
//! issuing interactive queries over raw files, no load step, no
//! external dependencies.
//!
//! The pieces:
//!
//! - [`protocol`] — the length-prefixed wire format: submit / cancel
//!   / stats requests, result / error / stats-report responses, all
//!   decoded defensively (malformed input is a structured
//!   [`ErrorCode::Malformed`], never a panic).
//! - [`Server`] — thread-per-connection serving. Every request owns a
//!   [`atgis::CancelToken`]: a wire cancel frame, a client disconnect,
//!   or a per-request deadline trips it. A single dispatcher drains
//!   the submission queue into
//!   [`execute_batch_prioritized`](atgis::QueryScheduler::execute_batch_prioritized)
//!   calls, so co-arriving requests share scans and interactive-class
//!   work is admitted ahead of batch outliers.
//! - [`Client`] — a small blocking client used by the examples, the
//!   integration tests, and any external driver.
//!
//! Backpressure reuses the scheduler's admission cost model: each
//! submission is priced in scan-equivalents, and batch-class work is
//! shed with [`ErrorCode::Overloaded`] once the outstanding cost
//! exceeds [`ServerConfig::queue_budget`] — interactive tenants keep
//! their latency; batch tenants get an immediate, retryable signal
//! instead of an unbounded queue.
//!
//! ```no_run
//! use atgis::{Engine, QueryScheduler};
//! use atgis_server::{MetricMask, Server, Client, Priority, QuerySpec, NO_TIMEOUT};
//! use atgis_formats::Format;
//! use atgis_geometry::Mbr;
//!
//! let scheduler = QueryScheduler::new(Engine::builder().build());
//! let server = Server::new(scheduler);
//! server.register(0, atgis::Dataset::from_bytes(geojson_bytes(), Format::GeoJson));
//! let handle = server.serve("127.0.0.1:0".parse().unwrap()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let tile = QuerySpec::Aggregation {
//!     region: Mbr::new(-2.0, 48.0, 2.0, 52.0),
//!     metrics: MetricMask::ALL,
//! };
//! let reply = client.query(0, &tile, Priority::Interactive, NO_TIMEOUT).unwrap();
//! println!("{:?}", reply);
//! # fn geojson_bytes() -> Vec<u8> { Vec::new() }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod protocol;
mod server;

pub use client::{Client, ServerError};
pub use protocol::{
    ClassReport, ErrorCode, MetricMask, QuerySpec, Request, Response, StatsReport, NO_TIMEOUT,
};
pub use server::{Server, ServerConfig, ServerHandle};

// Re-exported so client code can name priorities and queries without
// depending on the core crate directly.
pub use atgis::{Priority, QueryResult};
