//! The length-prefixed wire protocol between clients and the server.
//!
//! Every frame is `u32` big-endian *payload length*, then the payload:
//! one opcode byte followed by an opcode-specific body. Integers are
//! big-endian; `f64` travels as the big-endian bytes of
//! [`f64::to_bits`], so values (including NaN payloads and signed
//! zeros) round-trip bit-identically.
//!
//! Requests: [`SUBMIT`] (request id, dataset id, priority, timeout,
//! query), [`CANCEL`] (request id), [`STATS`] (empty). Responses:
//! [`RESULT`] (request id, encoded [`QueryResult`]), [`ERROR`]
//! (request id, [`ErrorCode`], message), [`STATS_REPORT`]
//! (a [`StatsReport`]).
//!
//! Decoding is defensive end to end: lengths are capped
//! ([`MAX_REQUEST_FRAME`] inbound, [`MAX_RESPONSE_FRAME`] outbound),
//! element counts are validated against the bytes actually present
//! before any allocation, and every malformed input surfaces a
//! [`WireError`] — never a panic, never an unbounded allocation.

use atgis::{FilterStrategy, Metric, Priority, Query, QueryResult};
use atgis_geometry::DistanceModel;
use atgis_geometry::Mbr;
use std::time::Duration;

/// Submit a query (client → server).
pub const SUBMIT: u8 = 1;
/// Cancel an in-flight request by id (client → server).
pub const CANCEL: u8 = 2;
/// Ask for the server's cumulative statistics (client → server).
pub const STATS: u8 = 3;
/// A successful query result (server → client).
pub const RESULT: u8 = 16;
/// A structured failure for one request (server → client).
pub const ERROR: u8 = 17;
/// The statistics snapshot answering a [`STATS`] frame.
pub const STATS_REPORT: u8 = 18;

/// Largest accepted client → server payload. Requests are tiny
/// (a query spec is a few dozen bytes), so anything bigger is a
/// corrupt or hostile length prefix.
pub const MAX_REQUEST_FRAME: u32 = 1 << 16;
/// Largest server → client payload (a containment result can carry
/// hundreds of thousands of match records).
pub const MAX_RESPONSE_FRAME: u32 = 1 << 28;
/// `timeout_ms` sentinel meaning "no deadline".
pub const NO_TIMEOUT: u64 = u64::MAX;

/// Why the server failed a request, as a stable wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The frame or its payload did not parse; the connection is
    /// closed after this error because the stream may be desynced.
    Malformed,
    /// The submitted dataset id is not registered on this server.
    UnknownDataset,
    /// Admission control shed this low-priority submission: the
    /// queued scan-equivalent cost already exceeds the server budget.
    Overloaded,
    /// The request's [`atgis::CancelToken`] was cancelled (a `CANCEL`
    /// frame or the client disconnecting mid-query).
    Cancelled,
    /// The request's deadline elapsed before it completed.
    DeadlineExceeded,
    /// The query's worker task panicked; the failure was confined to
    /// this request.
    Panicked,
    /// Any other failure: engine errors (parse failure, unsupported
    /// query), protocol misuse (a request id already in flight), or a
    /// result too large to frame; the message carries the detail.
    Internal,
}

impl ErrorCode {
    /// The stable wire byte for this code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownDataset => 2,
            ErrorCode::Overloaded => 3,
            ErrorCode::Cancelled => 4,
            ErrorCode::DeadlineExceeded => 5,
            ErrorCode::Panicked => 6,
            ErrorCode::Internal => 7,
        }
    }

    /// Decodes a wire byte; `None` for unknown codes.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownDataset,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::Cancelled,
            5 => ErrorCode::DeadlineExceeded,
            6 => ErrorCode::Panicked,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::UnknownDataset => "unknown dataset",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::Panicked => "query panicked",
            ErrorCode::Internal => "internal error",
        };
        f.write_str(s)
    }
}

/// Which aggregate metrics an aggregation request computes, as one
/// wire byte: bit 1 = count, bit 2 = area, bit 4 = perimeter. The
/// server rejects a zero or unknown-bit mask at parse time, so a
/// decoded mask is always valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricMask(pub u8);

impl MetricMask {
    /// Bit selecting [`Metric::Count`].
    pub const COUNT: u8 = 1;
    /// Bit selecting [`Metric::Area`].
    pub const AREA: u8 = 2;
    /// Bit selecting [`Metric::Perimeter`].
    pub const PERIMETER: u8 = 4;
    /// Every metric — what [`Query::aggregation`] computes.
    pub const ALL: MetricMask = MetricMask(Self::COUNT | Self::AREA | Self::PERIMETER);

    /// Whether the mask selects at least one metric and no unknown
    /// bits.
    pub fn is_valid(self) -> bool {
        self.0 != 0 && self.0 & !Self::ALL.0 == 0
    }

    /// The selected metrics, in the same order as the
    /// [`Query::aggregation`] default so `MetricMask::ALL` denotes the
    /// *identical* engine query (and deduplicates against library
    /// submissions of it).
    pub fn to_metrics(self) -> Vec<Metric> {
        let mut metrics = Vec::new();
        if self.0 & Self::AREA != 0 {
            metrics.push(Metric::Area);
        }
        if self.0 & Self::PERIMETER != 0 {
            metrics.push(Metric::Perimeter);
        }
        if self.0 & Self::COUNT != 0 {
            metrics.push(Metric::Count);
        }
        metrics
    }
}

/// A query as it travels on the wire: the closed, fixed-size subset
/// of [`Query`] the protocol speaks (rectangular regions and a metric
/// bitmask; the full polygon surface stays a library concern). Build
/// the engine query with [`QuerySpec::to_query`] — tests use the same
/// call for the library-path comparison, which is what makes
/// "bit-identical over the wire" checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// Geometries intersecting the region ([`Query::containment`]).
    Containment(Mbr),
    /// Aggregate the selected metrics over the region
    /// ([`Query::aggregation_with`]; `MetricMask::ALL` is exactly
    /// [`Query::aggregation`]).
    Aggregation {
        /// The query region.
        region: Mbr,
        /// Which metrics to compute.
        metrics: MetricMask,
    },
    /// Self-join with the id-threshold split ([`Query::join`]).
    Join(u64),
    /// Join + perimeter filters + union-area aggregate
    /// ([`Query::combined`]).
    Combined {
        /// Id threshold splitting the two join sides.
        id_threshold: u64,
        /// Minimum left-side perimeter filter.
        min_left: f64,
        /// Maximum right-side perimeter filter.
        max_right: f64,
    },
}

impl QuerySpec {
    /// The engine [`Query`] this spec denotes — exactly what the
    /// corresponding library constructor builds.
    pub fn to_query(&self) -> Query {
        match *self {
            QuerySpec::Containment(mbr) => Query::containment(mbr),
            QuerySpec::Aggregation { region, metrics } => Query::aggregation_with(
                region,
                metrics.to_metrics(),
                DistanceModel::Spherical,
                FilterStrategy::Auto,
            ),
            QuerySpec::Join(t) => Query::join(t),
            QuerySpec::Combined {
                id_threshold,
                min_left,
                max_right,
            } => Query::combined(id_threshold, min_left, max_right),
        }
    }
}

/// A parsed client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one query for execution.
    Submit {
        /// Client-chosen id echoed in the response.
        req_id: u64,
        /// Server-registered dataset id.
        dataset: u64,
        /// SLO class the scheduler admits the query under.
        priority: Priority,
        /// Per-request deadline in milliseconds; [`NO_TIMEOUT`] for
        /// none.
        timeout_ms: u64,
        /// The query itself.
        query: QuerySpec,
    },
    /// Cancel the in-flight request with this id (advisory: unknown
    /// or already-completed ids are ignored).
    Cancel {
        /// The id from the original submit.
        req_id: u64,
    },
    /// Request a [`StatsReport`].
    Stats,
}

/// A parsed server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request completed; here is its result.
    Result {
        /// Echo of the submit's request id.
        req_id: u64,
        /// The query's result, bit-identical to the library path.
        result: QueryResult,
    },
    /// The request failed in a structured way.
    Error {
        /// Echo of the offending request id (0 when the failure was
        /// not attributable to a request, e.g. an unparseable frame).
        req_id: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The statistics snapshot.
    Stats(StatsReport),
}

/// Completion-latency percentiles for one SLO class, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassReport {
    /// Queries completed under this class.
    pub completed: u64,
    /// Nearest-rank p50 completion latency, µs.
    pub p50_us: u64,
    /// Nearest-rank p95 completion latency, µs.
    pub p95_us: u64,
    /// Nearest-rank p99 completion latency, µs.
    pub p99_us: u64,
}

/// The server's cumulative serving statistics, as answered to a
/// [`STATS`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Queries served (every submit that reached the scheduler).
    pub served: u64,
    /// Queries actually executed after dedup and cache hits.
    pub unique: u64,
    /// Queries answered by sharing another submission's execution.
    pub dedup_hits: u64,
    /// Queries answered from the cross-batch aggregate cache.
    pub cache_hits: u64,
    /// Structural parse passes across all dispatched waves.
    pub scan_passes: u64,
    /// Requests that ended [`ErrorCode::Cancelled`].
    pub cancelled: u64,
    /// Requests that ended [`ErrorCode::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests that ended [`ErrorCode::Panicked`].
    pub task_panics: u64,
    /// Low-priority submissions shed with [`ErrorCode::Overloaded`]
    /// before ever queueing.
    pub overloaded: u64,
    /// Interactive-class completion latencies.
    pub interactive: ClassReport,
    /// Batch-class completion latencies.
    pub batch: ClassReport,
}

/// A defensive decoding failure: the frame did not say what its
/// opcode promised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type WireResult<T> = std::result::Result<T, WireError>;

fn err<T>(what: &str) -> WireResult<T> {
    Err(WireError(what.to_string()))
}

// ---------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_mbr(buf: &mut Vec<u8>, m: &Mbr) {
    put_f64(buf, m.min_x);
    put_f64(buf, m.min_y);
    put_f64(buf, m.max_x);
    put_f64(buf, m.max_y);
}

/// Bounds-checked cursor over a frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return err("truncated payload");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn mbr(&mut self) -> WireResult<Mbr> {
        Ok(Mbr::new(self.f64()?, self.f64()?, self.f64()?, self.f64()?))
    }

    /// A `u32` element count for fixed-`size` records, validated
    /// against the bytes actually present *before* any allocation.
    fn count(&mut self, size: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(size)
            .is_none_or(|total| total > self.remaining())
        {
            return err("element count exceeds payload");
        }
        Ok(n)
    }

    fn finish(self) -> WireResult<()> {
        if self.remaining() != 0 {
            return err("trailing bytes after payload");
        }
        Ok(())
    }
}

fn priority_to_u8(p: Priority) -> u8 {
    match p {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

fn priority_from_u8(b: u8) -> WireResult<Priority> {
    match b {
        0 => Ok(Priority::Interactive),
        1 => Ok(Priority::Batch),
        _ => err("unknown priority class"),
    }
}

// ---------------------------------------------------------------
// Frame payload encoding (opcode byte + body; the u32 length prefix
// is written by the framing layer)
// ---------------------------------------------------------------

/// Encodes a [`Request::Submit`] payload.
pub fn encode_submit(
    req_id: u64,
    dataset: u64,
    priority: Priority,
    timeout_ms: u64,
    query: &QuerySpec,
) -> Vec<u8> {
    let mut buf = vec![SUBMIT];
    put_u64(&mut buf, req_id);
    put_u64(&mut buf, dataset);
    put_u8(&mut buf, priority_to_u8(priority));
    put_u64(&mut buf, timeout_ms);
    match *query {
        QuerySpec::Containment(mbr) => {
            put_u8(&mut buf, 1);
            put_mbr(&mut buf, &mbr);
        }
        QuerySpec::Aggregation { region, metrics } => {
            put_u8(&mut buf, 2);
            put_mbr(&mut buf, &region);
            put_u8(&mut buf, metrics.0);
        }
        QuerySpec::Join(t) => {
            put_u8(&mut buf, 3);
            put_u64(&mut buf, t);
        }
        QuerySpec::Combined {
            id_threshold,
            min_left,
            max_right,
        } => {
            put_u8(&mut buf, 4);
            put_u64(&mut buf, id_threshold);
            put_f64(&mut buf, min_left);
            put_f64(&mut buf, max_right);
        }
    }
    buf
}

/// Encodes a [`Request::Cancel`] payload.
pub fn encode_cancel(req_id: u64) -> Vec<u8> {
    let mut buf = vec![CANCEL];
    put_u64(&mut buf, req_id);
    buf
}

/// Encodes a [`Request::Stats`] payload.
pub fn encode_stats_request() -> Vec<u8> {
    vec![STATS]
}

/// Encodes a [`Response::Result`] payload.
pub fn encode_result(req_id: u64, result: &QueryResult) -> Vec<u8> {
    let mut buf = vec![RESULT];
    put_u64(&mut buf, req_id);
    match result {
        QueryResult::Matches(records) => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, records.len() as u32);
            for r in records {
                put_u64(&mut buf, r.id);
                put_u64(&mut buf, r.offset);
                put_u32(&mut buf, r.len);
                put_mbr(&mut buf, &r.mbr);
            }
        }
        QueryResult::Aggregate(a) => {
            put_u8(&mut buf, 2);
            put_u64(&mut buf, a.count);
            put_f64(&mut buf, a.total_area);
            put_f64(&mut buf, a.total_perimeter);
        }
        QueryResult::Joined(pairs) => {
            put_u8(&mut buf, 3);
            put_u32(&mut buf, pairs.len() as u32);
            for p in pairs {
                put_u64(&mut buf, p.left_id);
                put_u64(&mut buf, p.right_id);
                put_u64(&mut buf, p.left_offset);
                put_u64(&mut buf, p.right_offset);
            }
        }
        QueryResult::Combined {
            pairs,
            total_union_area,
        } => {
            put_u8(&mut buf, 4);
            put_u64(&mut buf, *pairs);
            put_f64(&mut buf, *total_union_area);
        }
    }
    buf
}

/// Encodes a [`Response::Error`] payload.
pub fn encode_error(req_id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = vec![ERROR];
    put_u64(&mut buf, req_id);
    put_u8(&mut buf, code.as_u8());
    let msg = message.as_bytes();
    let len = msg.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_be_bytes());
    buf.extend_from_slice(&msg[..len]);
    buf
}

/// Encodes a [`Response::Stats`] payload.
pub fn encode_stats_report(report: &StatsReport) -> Vec<u8> {
    let mut buf = vec![STATS_REPORT];
    for v in [
        report.served,
        report.unique,
        report.dedup_hits,
        report.cache_hits,
        report.scan_passes,
        report.cancelled,
        report.deadline_exceeded,
        report.task_panics,
        report.overloaded,
    ] {
        put_u64(&mut buf, v);
    }
    for class in [&report.interactive, &report.batch] {
        put_u64(&mut buf, class.completed);
        put_u64(&mut buf, class.p50_us);
        put_u64(&mut buf, class.p95_us);
        put_u64(&mut buf, class.p99_us);
    }
    buf
}

/// Microsecond wire form of a latency (saturating: a ~584-millennium
/// latency reports `u64::MAX`).
pub fn duration_to_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------
// Frame payload decoding
// ---------------------------------------------------------------

/// Parses a client → server payload (opcode byte included).
pub fn parse_request(payload: &[u8]) -> WireResult<Request> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        SUBMIT => {
            let req_id = r.u64()?;
            let dataset = r.u64()?;
            let priority = priority_from_u8(r.u8()?)?;
            let timeout_ms = r.u64()?;
            let query = match r.u8()? {
                1 => QuerySpec::Containment(r.mbr()?),
                2 => {
                    let region = r.mbr()?;
                    let metrics = MetricMask(r.u8()?);
                    if !metrics.is_valid() {
                        return err("bad metric mask");
                    }
                    QuerySpec::Aggregation { region, metrics }
                }
                3 => QuerySpec::Join(r.u64()?),
                4 => QuerySpec::Combined {
                    id_threshold: r.u64()?,
                    min_left: r.f64()?,
                    max_right: r.f64()?,
                },
                _ => return err("unknown query tag"),
            };
            Request::Submit {
                req_id,
                dataset,
                priority,
                timeout_ms,
                query,
            }
        }
        CANCEL => Request::Cancel { req_id: r.u64()? },
        STATS => Request::Stats,
        _ => return err("unknown request opcode"),
    };
    r.finish()?;
    Ok(req)
}

/// Parses a server → client payload (opcode byte included).
pub fn parse_response(payload: &[u8]) -> WireResult<Response> {
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        RESULT => {
            let req_id = r.u64()?;
            let result = match r.u8()? {
                1 => {
                    let n = r.count(52)?; // 8 + 8 + 4 + 32 bytes per record
                    let mut records = Vec::with_capacity(n);
                    for _ in 0..n {
                        records.push(atgis::MatchRecord {
                            id: r.u64()?,
                            offset: r.u64()?,
                            len: r.u32()?,
                            mbr: r.mbr()?,
                        });
                    }
                    QueryResult::Matches(records)
                }
                2 => QueryResult::Aggregate(atgis::AggregateValues {
                    count: r.u64()?,
                    total_area: r.f64()?,
                    total_perimeter: r.f64()?,
                }),
                3 => {
                    let n = r.count(32)?; // 4 × u64 per pair
                    let mut pairs = Vec::with_capacity(n);
                    for _ in 0..n {
                        pairs.push(atgis::JoinPair {
                            left_id: r.u64()?,
                            right_id: r.u64()?,
                            left_offset: r.u64()?,
                            right_offset: r.u64()?,
                        });
                    }
                    QueryResult::Joined(pairs)
                }
                4 => QueryResult::Combined {
                    pairs: r.u64()?,
                    total_union_area: r.f64()?,
                },
                _ => return err("unknown result tag"),
            };
            Response::Result { req_id, result }
        }
        ERROR => {
            let req_id = r.u64()?;
            let code = ErrorCode::from_u8(r.u8()?).ok_or(WireError("unknown error code".into()))?;
            let len = u16::from_be_bytes(r.bytes(2)?.try_into().unwrap()) as usize;
            let message = String::from_utf8_lossy(r.bytes(len)?).into_owned();
            Response::Error {
                req_id,
                code,
                message,
            }
        }
        STATS_REPORT => {
            let mut next = || r.u64();
            let report = StatsReport {
                served: next()?,
                unique: next()?,
                dedup_hits: next()?,
                cache_hits: next()?,
                scan_passes: next()?,
                cancelled: next()?,
                deadline_exceeded: next()?,
                task_panics: next()?,
                overloaded: next()?,
                interactive: ClassReport {
                    completed: next()?,
                    p50_us: next()?,
                    p95_us: next()?,
                    p99_us: next()?,
                },
                batch: ClassReport {
                    completed: next()?,
                    p50_us: next()?,
                    p95_us: next()?,
                    p99_us: next()?,
                },
            };
            Response::Stats(report)
        }
        _ => return err("unknown response opcode"),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis::{AggregateValues, JoinPair, MatchRecord};

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            (
                encode_submit(
                    7,
                    3,
                    Priority::Batch,
                    NO_TIMEOUT,
                    &QuerySpec::Containment(Mbr::new(-1.5, 2.0, 3.25, 4.0)),
                ),
                Request::Submit {
                    req_id: 7,
                    dataset: 3,
                    priority: Priority::Batch,
                    timeout_ms: NO_TIMEOUT,
                    query: QuerySpec::Containment(Mbr::new(-1.5, 2.0, 3.25, 4.0)),
                },
            ),
            (
                encode_submit(
                    8,
                    0,
                    Priority::Interactive,
                    250,
                    &QuerySpec::Combined {
                        id_threshold: 99,
                        min_left: 0.5,
                        max_right: f64::INFINITY,
                    },
                ),
                Request::Submit {
                    req_id: 8,
                    dataset: 0,
                    priority: Priority::Interactive,
                    timeout_ms: 250,
                    query: QuerySpec::Combined {
                        id_threshold: 99,
                        min_left: 0.5,
                        max_right: f64::INFINITY,
                    },
                },
            ),
            (
                encode_submit(
                    9,
                    1,
                    Priority::Interactive,
                    NO_TIMEOUT,
                    &QuerySpec::Aggregation {
                        region: Mbr::new(0.0, 0.0, 2.0, 2.0),
                        metrics: MetricMask(MetricMask::COUNT | MetricMask::AREA),
                    },
                ),
                Request::Submit {
                    req_id: 9,
                    dataset: 1,
                    priority: Priority::Interactive,
                    timeout_ms: NO_TIMEOUT,
                    query: QuerySpec::Aggregation {
                        region: Mbr::new(0.0, 0.0, 2.0, 2.0),
                        metrics: MetricMask(MetricMask::COUNT | MetricMask::AREA),
                    },
                },
            ),
            (encode_cancel(42), Request::Cancel { req_id: 42 }),
            (encode_stats_request(), Request::Stats),
        ];
        for (bytes, want) in cases {
            assert_eq!(parse_request(&bytes).unwrap(), want);
        }
    }

    #[test]
    fn responses_round_trip() {
        let results = vec![
            QueryResult::Matches(vec![MatchRecord {
                id: 5,
                offset: 100,
                len: 33,
                mbr: Mbr::new(0.0, -0.0, 1.0, 2.0),
            }]),
            QueryResult::Matches(vec![]),
            QueryResult::Aggregate(AggregateValues {
                count: 9,
                total_area: 1.25e6,
                total_perimeter: 7.5,
            }),
            QueryResult::Joined(vec![JoinPair {
                left_id: 1,
                right_id: 2,
                left_offset: 10,
                right_offset: 20,
            }]),
            QueryResult::Combined {
                pairs: 3,
                total_union_area: 0.125,
            },
        ];
        for res in results {
            let bytes = encode_result(11, &res);
            match parse_response(&bytes).unwrap() {
                Response::Result { req_id, result } => {
                    assert_eq!(req_id, 11);
                    assert_eq!(result, res);
                }
                other => panic!("expected result, got {other:?}"),
            }
        }
        let bytes = encode_error(4, ErrorCode::Overloaded, "shed");
        assert_eq!(
            parse_response(&bytes).unwrap(),
            Response::Error {
                req_id: 4,
                code: ErrorCode::Overloaded,
                message: "shed".into(),
            }
        );
        let report = StatsReport {
            served: 10,
            unique: 8,
            dedup_hits: 2,
            cache_hits: 1,
            scan_passes: 4,
            cancelled: 1,
            deadline_exceeded: 1,
            task_panics: 0,
            overloaded: 3,
            interactive: ClassReport {
                completed: 6,
                p50_us: 100,
                p95_us: 200,
                p99_us: 300,
            },
            batch: ClassReport {
                completed: 4,
                p50_us: 1000,
                p95_us: 2000,
                p99_us: 3000,
            },
        };
        assert_eq!(
            parse_response(&encode_stats_report(&report)).unwrap(),
            Response::Stats(report)
        );
    }

    #[test]
    fn metric_mask_all_is_the_library_default_aggregation() {
        // `MetricMask::ALL` must denote the *identical* engine query
        // (same metric order), so wire submissions deduplicate against
        // library submissions of `Query::aggregation`.
        let region = Mbr::new(-2.0, 48.0, 2.0, 52.0);
        let spec = QuerySpec::Aggregation {
            region,
            metrics: MetricMask::ALL,
        };
        // `Query` has no `PartialEq`; its Debug form is total, so
        // comparing it pins the metric order too.
        assert_eq!(
            format!("{:?}", spec.to_query()),
            format!("{:?}", Query::aggregation(region))
        );
        assert_eq!(
            MetricMask(MetricMask::COUNT).to_metrics(),
            vec![Metric::Count]
        );
    }

    #[test]
    fn signed_zero_survives_the_wire() {
        // `f64` travels as raw bits: -0.0 must come back as -0.0, not
        // +0.0 (PartialEq can't see the difference; the bits can).
        let bytes = encode_submit(
            1,
            0,
            Priority::Interactive,
            NO_TIMEOUT,
            &QuerySpec::Containment(Mbr::new(-0.0, 0.0, 1.0, 1.0)),
        );
        match parse_request(&bytes).unwrap() {
            Request::Submit {
                query: QuerySpec::Containment(mbr),
                ..
            } => assert_eq!(mbr.min_x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        // Empty, unknown opcode, truncated submit, bad priority, bad
        // query tag, trailing junk.
        assert!(parse_request(&[]).is_err());
        assert!(parse_request(&[99]).is_err());
        assert!(parse_request(
            &encode_submit(1, 2, Priority::Interactive, 5, &QuerySpec::Join(1))[..12]
        )
        .is_err());
        let mut bad_prio = encode_submit(1, 2, Priority::Interactive, 5, &QuerySpec::Join(1));
        bad_prio[17] = 9; // priority byte
        assert!(parse_request(&bad_prio).is_err());
        let mut bad_tag = encode_submit(1, 2, Priority::Interactive, 5, &QuerySpec::Join(1));
        bad_tag[26] = 200; // query tag byte
        assert!(parse_request(&bad_tag).is_err());
        // Aggregation metric masks: empty and unknown bits are both
        // rejected at parse time (the mask is the payload's last byte).
        for bad_mask in [0u8, 0x80, MetricMask::ALL.0 | 0x08] {
            let mut frame = encode_submit(
                1,
                2,
                Priority::Interactive,
                5,
                &QuerySpec::Aggregation {
                    region: Mbr::new(0.0, 0.0, 1.0, 1.0),
                    metrics: MetricMask(bad_mask),
                },
            );
            assert_eq!(frame.last(), Some(&bad_mask));
            assert!(parse_request(&frame).is_err(), "mask {bad_mask:#x}");
            // …while a valid mask in the same frame parses.
            *frame.last_mut().unwrap() = MetricMask::PERIMETER;
            assert!(parse_request(&frame).is_ok());
        }
        let mut trailing = encode_cancel(1);
        trailing.push(0);
        assert!(parse_request(&trailing).is_err());
        // Responses: a match count promising more records than the
        // payload holds must be rejected before allocating.
        let mut huge = vec![RESULT];
        huge.extend_from_slice(&1u64.to_be_bytes());
        huge.push(1); // Matches tag
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(parse_response(&huge).is_err());
        assert!(parse_response(&[]).is_err());
        assert!(parse_response(&[99]).is_err());
    }
}
