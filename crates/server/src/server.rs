//! The serving loop: connections, the dispatch queue, and
//! backpressure.
//!
//! One reader thread per connection parses frames and enqueues
//! submissions; one writer thread per connection drains a channel of
//! encoded response frames (so the dispatcher never blocks on a slow
//! client socket); a single **dispatcher** thread drains the shared
//! queue into [`QueryScheduler::execute_batch_prioritized`] calls —
//! requests that arrive together share scans, and the scheduler's
//! class-ordered admission keeps interactive work ahead of batch
//! outliers.
//!
//! Every request owns a [`CancelToken`]: a wire `CANCEL` frame or the
//! client disconnecting trips it, and a per-request deadline arms it.
//! Backpressure reuses the admission cost model — each submission is
//! costed in scan-equivalents ([`QueryScheduler::estimate_query_cost`])
//! and batch-class submissions are shed with
//! [`ErrorCode::Overloaded`] once the queued + in-flight cost exceeds
//! [`ServerConfig::queue_budget`]. Interactive submissions are always
//! admitted: shedding is what protects them.

use crate::protocol::{
    self, duration_to_us, encode_error, encode_result, encode_stats_report, ClassReport, ErrorCode,
    Request, StatsReport, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use atgis::cancel::Interrupt;
use atgis::{
    CancelToken, Dataset, DatasetId, ExecOptions, Priority, Query, QueryError, QueryResult,
    QueryScheduler, ScheduledQuery, SchedulerStats,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Serving-policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queued + in-flight scan-equivalent cost beyond which
    /// batch-class submissions are shed with
    /// [`ErrorCode::Overloaded`]. Interactive submissions ignore the
    /// budget.
    pub queue_budget: f64,
    /// How long the dispatcher sleeps waiting for work before
    /// rechecking shutdown, and how long blocked connection reads
    /// wait between shutdown checks.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // ~16 full scans of queued work: past that, batch tenants
            // are better served by an immediate structured rejection
            // than an unbounded queue.
            queue_budget: 16.0,
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// One submission waiting for (or in) dispatch.
struct PendingRequest {
    req_id: u64,
    dataset: DatasetId,
    query: Query,
    class: Priority,
    cost: f64,
    token: CancelToken,
    enqueued: Instant,
    reply: mpsc::Sender<Vec<u8>>,
    /// The owning connection's live-request map, so completion
    /// removes the token a later `CANCEL` frame would look up.
    live: Arc<Mutex<HashMap<u64, CancelToken>>>,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<PendingRequest>,
    /// Scan-equivalent cost of everything admitted but not yet
    /// completed — the backpressure currency.
    outstanding_cost: f64,
}

/// Cumulative serving statistics (the wire [`StatsReport`] is a
/// snapshot of this).
struct ServeStats {
    sched: SchedulerStats,
    overloaded: u64,
}

struct Shared {
    scheduler: QueryScheduler,
    config: ServerConfig,
    datasets: Mutex<HashMap<u64, DatasetId>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    stats: Mutex<ServeStats>,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> StatsReport {
        let stats = self.stats.lock().unwrap();
        let class_report = |class: Priority| {
            let ps = stats
                .sched
                .class_latency_percentiles(class, &[50.0, 95.0, 99.0]);
            ClassReport {
                completed: stats.sched.class_latencies(class).len() as u64,
                p50_us: duration_to_us(ps[0]),
                p95_us: duration_to_us(ps[1]),
                p99_us: duration_to_us(ps[2]),
            }
        };
        StatsReport {
            served: stats.sched.queries,
            unique: stats.sched.unique_queries,
            dedup_hits: stats.sched.dedup_hits,
            cache_hits: stats.sched.cache_hits,
            scan_passes: stats.sched.scan_passes,
            cancelled: stats.sched.cancelled,
            deadline_exceeded: stats.sched.deadline_exceeded,
            task_panics: stats.sched.task_panics,
            overloaded: stats.overloaded,
            interactive: class_report(Priority::Interactive),
            batch: class_report(Priority::Batch),
        }
    }

    /// The server-side cumulative [`SchedulerStats`] (per-request
    /// completions folded via [`SchedulerStats::record`]).
    fn scheduler_stats(&self) -> SchedulerStats {
        self.stats.lock().unwrap().sched.clone()
    }
}

/// A TCP front end wrapping one [`QueryScheduler`]. Register datasets
/// under small integer wire ids, then [`Server::serve`].
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// A server over `scheduler` with the default [`ServerConfig`].
    pub fn new(scheduler: QueryScheduler) -> Self {
        Server::with_config(scheduler, ServerConfig::default())
    }

    /// A server with explicit serving-policy knobs.
    pub fn with_config(scheduler: QueryScheduler, config: ServerConfig) -> Self {
        Server {
            shared: Arc::new(Shared {
                scheduler,
                config,
                datasets: Mutex::new(HashMap::new()),
                queue: Mutex::new(QueueState::default()),
                queue_cv: Condvar::new(),
                stats: Mutex::new(ServeStats {
                    sched: SchedulerStats::new(0),
                    overloaded: 0,
                }),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Registers `dataset` for serving under the client-visible
    /// `wire_id` (re-registering a wire id repoints it).
    pub fn register(&self, wire_id: u64, dataset: Dataset) {
        let id = self.shared.scheduler.register(dataset);
        self.shared.datasets.lock().unwrap().insert(wire_id, id);
    }

    /// Binds `addr` and starts serving: an accept thread, a
    /// dispatcher thread, and two threads per accepted connection.
    /// Returns immediately with a handle for the bound address,
    /// statistics, and shutdown. Bind to port 0 for an ephemeral
    /// loopback port in tests.
    pub fn serve(self, addr: SocketAddr) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = self.shared;

        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || dispatch_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServerHandle {
            shared,
            local,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }
}

/// A running server: its address, its statistics, and its off switch.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    dispatcher: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// A snapshot of the cumulative serving statistics (the same
    /// report a `STATS` frame answers).
    pub fn stats(&self) -> StatsReport {
        self.shared.snapshot()
    }

    /// The cumulative per-request [`SchedulerStats`]: one
    /// latency/class entry per served query, counters folded across
    /// every dispatched wave.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.shared.scheduler_stats()
    }

    /// Stops accepting, drains the dispatcher, and joins both server
    /// threads. Connection threads notice the flag within one poll
    /// interval and exit on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads exactly `buf.len()` bytes, riding out read timeouts (which
/// exist only so shutdown is noticed). `Ok(false)` means clean EOF
/// *before the first byte*; EOF mid-buffer is an error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(std::io::Error::other("server shutdown"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a
/// frame boundary, `Err` on anything else (including an oversized or
/// truncated frame).
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_full(stream, &mut len, shared)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len);
    if len == 0 || len > MAX_REQUEST_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} outside (0, {MAX_REQUEST_FRAME}]"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(stream, &mut payload, shared)? {
        return Err(ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(payload))
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };

    // The writer owns the socket's send side; everyone else sends
    // encoded frames through the channel, so a slow client can never
    // block the dispatcher.
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::spawn(move || write_loop(write_half, &reply_rx));

    let live: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::default();
    loop {
        match read_frame(&mut stream, shared) {
            Ok(None) => break, // clean disconnect
            Err(e) => {
                // A malformed length prefix or mid-frame EOF desyncs
                // the stream: answer with a structured error (best
                // effort) and close.
                if e.kind() == ErrorKind::InvalidData {
                    let _ = reply_tx.send(encode_error(0, ErrorCode::Malformed, &e.to_string()));
                }
                break;
            }
            Ok(Some(payload)) => match protocol::parse_request(&payload) {
                Err(we) => {
                    let _ = reply_tx.send(encode_error(0, ErrorCode::Malformed, &we.to_string()));
                    break;
                }
                Ok(Request::Stats) => {
                    let _ = reply_tx.send(encode_stats_report(&shared.snapshot()));
                }
                Ok(Request::Cancel { req_id }) => {
                    // Advisory: completed or never-seen ids are a
                    // benign race, not an error.
                    if let Some(token) = live.lock().unwrap().get(&req_id) {
                        token.cancel();
                    }
                }
                Ok(Request::Submit {
                    req_id,
                    dataset,
                    priority,
                    timeout_ms,
                    query,
                }) => submit(
                    shared, &live, &reply_tx, req_id, dataset, priority, timeout_ms, &query,
                ),
            },
        }
    }

    // Disconnect (or desync): every in-flight request this client
    // still owns is cancelled, exactly as if it had sent CANCEL.
    for token in live.lock().unwrap().values() {
        token.cancel();
    }
    // Let the writer drain any queued reply (e.g. the Malformed error
    // for the frame that desynced us) before tearing the socket down:
    // shutdown(Both) would cut the send half out from under it.
    drop(reply_tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn write_loop(mut stream: TcpStream, replies: &mpsc::Receiver<Vec<u8>>) {
    while let Ok(payload) = replies.recv() {
        let len = (payload.len() as u32).to_be_bytes();
        if stream.write_all(&len).is_err() || stream.write_all(&payload).is_err() {
            break;
        }
        let _ = stream.flush();
    }
}

#[allow(clippy::too_many_arguments)]
fn submit(
    shared: &Arc<Shared>,
    live: &Arc<Mutex<HashMap<u64, CancelToken>>>,
    reply: &mpsc::Sender<Vec<u8>>,
    req_id: u64,
    dataset: u64,
    priority: Priority,
    timeout_ms: u64,
    query: &protocol::QuerySpec,
) {
    // A second submit reusing a live id would overwrite its token in
    // the live map; the first completion would then release the map
    // entry and a later CANCEL (or disconnect cleanup) would miss the
    // still-running second request. Reject it up front.
    if live.lock().unwrap().contains_key(&req_id) {
        let _ = reply.send(encode_error(
            req_id,
            ErrorCode::Internal,
            &format!("request id {req_id} is already in flight on this connection"),
        ));
        return;
    }
    let Some(id) = shared.datasets.lock().unwrap().get(&dataset).copied() else {
        let _ = reply.send(encode_error(
            req_id,
            ErrorCode::UnknownDataset,
            &format!("dataset {dataset} is not registered"),
        ));
        return;
    };
    let query = query.to_query();
    let cost = match shared.scheduler.estimate_query_cost(id, &query) {
        Ok(c) => c,
        Err(e) => {
            let _ = reply.send(encode_error(req_id, ErrorCode::Internal, &format!("{e:?}")));
            return;
        }
    };
    let token = if timeout_ms == protocol::NO_TIMEOUT {
        CancelToken::new()
    } else {
        CancelToken::with_deadline(Duration::from_millis(timeout_ms))
    };

    let mut queue = shared.queue.lock().unwrap();
    // Backpressure in the admission controller's own currency:
    // batch-class work is shed once outstanding scan-equivalents
    // exceed the budget. Interactive work always queues — shedding
    // batch is what keeps its latency flat.
    if priority == Priority::Batch && queue.outstanding_cost + cost > shared.config.queue_budget {
        drop(queue);
        shared.stats.lock().unwrap().overloaded += 1;
        let _ = reply.send(encode_error(
            req_id,
            ErrorCode::Overloaded,
            "queued cost over budget; retry later",
        ));
        return;
    }
    queue.outstanding_cost += cost;
    live.lock().unwrap().insert(req_id, token.clone());
    queue.pending.push(PendingRequest {
        req_id,
        dataset: id,
        query,
        class: priority,
        cost,
        token,
        enqueued: Instant::now(),
        reply: reply.clone(),
        live: Arc::clone(live),
    });
    drop(queue);
    shared.queue_cv.notify_all();
}

fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap();
            while queue.pending.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, shared.config.poll_interval)
                    .unwrap();
                queue = q;
            }
            std::mem::take(&mut queue.pending)
        };

        // Weed requests whose token already tripped (client gone,
        // deadline elapsed while queued): they cost nothing to fail
        // now and nothing downstream.
        let mut runnable = Vec::with_capacity(batch.len());
        for req in batch {
            match req.token.interrupted() {
                Some(interrupt) => finish_interrupted(shared, &req, interrupt),
                None => runnable.push(req),
            }
        }

        // Group by dataset, preserving arrival order; the scheduler
        // handles class ordering *within* each call.
        let mut groups: Vec<(DatasetId, Vec<PendingRequest>)> = Vec::new();
        for req in runnable {
            match groups.iter_mut().find(|(id, _)| *id == req.dataset) {
                Some((_, members)) => members.push(req),
                None => groups.push((req.dataset, vec![req])),
            }
        }

        for (dataset, group) in groups {
            run_group(shared, dataset, group);
        }
    }
}

fn finish_interrupted(shared: &Arc<Shared>, req: &PendingRequest, interrupt: Interrupt) {
    let (code, qe) = match interrupt {
        Interrupt::Cancelled => (ErrorCode::Cancelled, QueryError::Cancelled),
        Interrupt::DeadlineExceeded => (ErrorCode::DeadlineExceeded, QueryError::DeadlineExceeded),
    };
    respond_error(req, code, &qe.to_string());
    {
        let mut stats = shared.stats.lock().unwrap();
        match interrupt {
            Interrupt::Cancelled => stats.sched.cancelled += 1,
            Interrupt::DeadlineExceeded => stats.sched.deadline_exceeded += 1,
        }
        stats.sched.record(req.class, req.enqueued.elapsed());
    }
    release(shared, req);
}

fn respond_error(req: &PendingRequest, code: ErrorCode, msg: &str) {
    let _ = req.reply.send(encode_error(req.req_id, code, msg));
}

/// Encodes a successful result, or reports its encoded size when it
/// exceeds `cap` — sending an over-cap frame anyway would make the
/// client reject the length prefix as a desynced stream and kill the
/// connection, so the caller turns `Err` into a structured error.
fn result_payload(req_id: u64, result: &QueryResult, cap: usize) -> Result<Vec<u8>, usize> {
    let payload = encode_result(req_id, result);
    if payload.len() > cap {
        Err(payload.len())
    } else {
        Ok(payload)
    }
}

fn respond_result(req: &PendingRequest, result: &QueryResult) {
    match result_payload(req.req_id, result, MAX_RESPONSE_FRAME as usize) {
        Ok(payload) => {
            let _ = req.reply.send(payload);
        }
        Err(size) => respond_error(
            req,
            ErrorCode::Internal,
            &format!(
                "result frame of {size} bytes exceeds the {MAX_RESPONSE_FRAME}-byte response cap"
            ),
        ),
    }
}

/// Re-checks a grouped member's token after the shared dispatch.
/// Grouped requests share scans and cannot abort each other mid-wave,
/// so a member whose token tripped (cancel *or* deadline) while the
/// group executed has its otherwise-successful result discarded here,
/// matching the solo path and the pre-dispatch weeding.
fn post_dispatch_outcome(
    result: Result<QueryResult, QueryError>,
    token: &CancelToken,
) -> Result<QueryResult, QueryError> {
    match result {
        Ok(r) => match token.interrupted() {
            None => Ok(r),
            Some(Interrupt::Cancelled) => Err(QueryError::Cancelled),
            Some(Interrupt::DeadlineExceeded) => Err(QueryError::DeadlineExceeded),
        },
        other => other,
    }
}

/// Returns the request's cost to the backpressure pool and drops its
/// live-map entry.
fn release(shared: &Arc<Shared>, req: &PendingRequest) {
    let mut queue = shared.queue.lock().unwrap();
    queue.outstanding_cost = (queue.outstanding_cost - req.cost).max(0.0);
    drop(queue);
    req.live.lock().unwrap().remove(&req.req_id);
}

fn run_group(shared: &Arc<Shared>, dataset: DatasetId, group: Vec<PendingRequest>) {
    let batch: Vec<ScheduledQuery> = group
        .iter()
        .map(|r| ScheduledQuery::with_priority(dataset, r.query.clone(), r.class))
        .collect();
    // A solo request runs under its own token, so a mid-scan CANCEL
    // or disconnect aborts the work itself. Grouped requests share
    // scans and cannot abort each other; their tokens are re-checked
    // after the group completes and stale members' results discarded.
    let solo_token = (group.len() == 1).then(|| group[0].token.clone());
    let dispatched = Instant::now();
    let outcome = shared.scheduler.run_multi(
        &batch,
        &ExecOptions::new()
            .isolated()
            .timed()
            .cancellable_opt(solo_token.as_ref()),
    );

    match outcome {
        Ok(out) => {
            let sstats = out.scheduler.expect("timed run reports scheduler stats");
            let results = out.outcomes;
            {
                let mut stats = shared.stats.lock().unwrap();
                stats.sched.unique_queries += sstats.unique_queries;
                stats.sched.dedup_hits += sstats.dedup_hits;
                stats.sched.cache_hits += sstats.cache_hits;
                stats.sched.scan_passes += sstats.scan_passes;
            }
            for (i, (req, result)) in group.iter().zip(results).enumerate() {
                // Latency the client observed: time queued + the
                // completion time of the wave that resolved it.
                let latency = dispatched.duration_since(req.enqueued) + sstats.latencies[i];
                let outcome = post_dispatch_outcome(result, &req.token);
                let mut stats = shared.stats.lock().unwrap();
                stats.sched.record(req.class, latency);
                match &outcome {
                    Ok(result) => {
                        drop(stats);
                        respond_result(req, result);
                    }
                    Err(qe) => {
                        let code = match qe {
                            QueryError::Cancelled => {
                                stats.sched.cancelled += 1;
                                ErrorCode::Cancelled
                            }
                            QueryError::DeadlineExceeded => {
                                stats.sched.deadline_exceeded += 1;
                                ErrorCode::DeadlineExceeded
                            }
                            QueryError::Panicked(_) => {
                                stats.sched.task_panics += 1;
                                ErrorCode::Panicked
                            }
                        };
                        drop(stats);
                        respond_error(req, code, &qe.to_string());
                    }
                }
                release(shared, req);
            }
        }
        Err(e) => {
            // A whole-group failure (e.g. the dataset failed to
            // parse) fails every member with the same structured
            // error.
            for req in &group {
                let mut stats = shared.stats.lock().unwrap();
                stats.sched.record(req.class, req.enqueued.elapsed());
                drop(stats);
                respond_error(req, ErrorCode::Internal, &format!("{e:?}"));
                release(shared, req);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgis::MatchRecord;
    use atgis_geometry::Mbr;

    #[test]
    fn post_dispatch_outcome_discards_stale_grouped_results() {
        let ok = || Ok(QueryResult::Matches(Vec::new()));

        let fresh = CancelToken::new();
        assert!(post_dispatch_outcome(ok(), &fresh).is_ok());

        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert!(matches!(
            post_dispatch_outcome(ok(), &cancelled),
            Err(QueryError::Cancelled)
        ));

        // A deadline that elapsed while the group executed maps to
        // DeadlineExceeded, exactly like the solo path.
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(matches!(
            post_dispatch_outcome(ok(), &expired),
            Err(QueryError::DeadlineExceeded)
        ));

        // Errors pass through untouched.
        assert!(matches!(
            post_dispatch_outcome(Err(QueryError::Cancelled), &expired),
            Err(QueryError::Cancelled)
        ));
    }

    #[test]
    fn over_cap_results_become_errors_not_oversized_frames() {
        let records = vec![
            MatchRecord {
                id: 1,
                offset: 0,
                len: 10,
                mbr: Mbr::new(0.0, 0.0, 1.0, 1.0),
            };
            4
        ];
        let result = QueryResult::Matches(records);
        let encoded = result_payload(9, &result, usize::MAX).unwrap();
        // One byte under the encoded size must be rejected with the
        // true size, one byte over must pass.
        assert_eq!(
            result_payload(9, &result, encoded.len() - 1),
            Err(encoded.len())
        );
        assert!(result_payload(9, &result, encoded.len()).is_ok());
    }
}
