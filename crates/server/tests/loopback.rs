//! Loopback integration suite: a real server on an ephemeral
//! loopback port, exercised by real TCP clients.
//!
//! Covers the serving-layer contract: results over the wire are
//! bit-identical to the library path, malformed and truncated frames
//! produce structured errors (never a panic or a hang), a client
//! disconnecting mid-query increments the cumulative `cancelled`
//! counter without affecting other tenants, and deadline / overload
//! failures map to distinct wire error codes.

use atgis::{Dataset, Engine, ExecOptions, Priority, QueryResult, QueryScheduler};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use atgis_server::protocol::{self, Request, StatsReport};
use atgis_server::{
    Client, ErrorCode, MetricMask, QuerySpec, Response, Server, ServerConfig, ServerHandle,
    NO_TIMEOUT,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn engine() -> Engine {
    Engine::builder()
        .threads(2)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build()
}

fn dataset(seed: u64, objects: usize) -> Dataset {
    Dataset::from_bytes(
        write_geojson(&OsmGenerator::new(seed).generate(objects)),
        Format::GeoJson,
    )
}

/// A served scheduler over one registered dataset (wire id 0).
fn serve(seed: u64, objects: usize, config: ServerConfig) -> ServerHandle {
    let server = Server::with_config(QueryScheduler::new(engine()), config);
    server.register(0, dataset(seed, objects));
    server
        .serve("127.0.0.1:0".parse().unwrap())
        .expect("bind loopback")
}

fn wait_until(what: &str, mut ready: impl FnMut() -> bool) {
    let start = Instant::now();
    while !ready() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let specs = [
        QuerySpec::Containment(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
        QuerySpec::Aggregation {
            region: Mbr::new(-2.0, 48.0, 2.0, 52.0),
            metrics: MetricMask::ALL,
        },
        QuerySpec::Containment(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        QuerySpec::Join(600),
    ];
    // The library path: same engine configuration, same constructors.
    let ds = dataset(71, 2_400);
    let lib = engine();
    let want: Vec<_> = specs
        .iter()
        .map(|s| {
            lib.run(&[s.to_query()], &ds, &ExecOptions::new())
                .and_then(|o| o.into_single())
                .unwrap()
        })
        .collect();

    let handle = serve(71, 2_400, ServerConfig::default());
    let addr = handle.addr();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Each worker walks the specs in a different order, at
                // mixed priorities, twice.
                for round in 0..2 {
                    for k in 0..specs.len() {
                        let i = (k + w + round) % specs.len();
                        let class = if (w + k) % 2 == 0 {
                            Priority::Interactive
                        } else {
                            Priority::Batch
                        };
                        let got = client
                            .query(0, &specs[i], class, NO_TIMEOUT)
                            .expect("io")
                            .expect("server result");
                        assert_eq!(got, want[i], "worker {w} spec {i} diverged");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client worker");
    }

    let stats = handle.stats();
    assert_eq!(stats.served, 4 * 2 * 4, "every submission accounted for");
    assert_eq!(stats.cancelled, 0);
    assert!(stats.interactive.completed > 0 && stats.batch.completed > 0);
    handle.shutdown();
}

/// Reads and parses one response frame off a raw socket (5 s cap so
/// a silent server fails the test instead of hanging it).
fn read_raw_response(stream: &mut TcpStream) -> Option<atgis_server::Response> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut payload).ok()?;
    atgis_server::protocol::parse_response(&payload).ok()
}

#[test]
fn malformed_frames_get_structured_errors_never_hangs() {
    let handle = serve(72, 400, ServerConfig::default());
    let addr = handle.addr();
    let expect_malformed = |mut raw: TcpStream, what: &str| {
        match read_raw_response(&mut raw) {
            Some(atgis_server::Response::Error { req_id, code, .. }) => {
                assert_eq!(req_id, 0, "{what}: unattributable request id");
                assert_eq!(code, ErrorCode::Malformed, "{what}");
            }
            other => panic!("{what}: expected a Malformed error, got {other:?}"),
        }
        // The connection is closed after a desync: next read is EOF.
        let mut probe = [0u8; 1];
        assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "{what}: not closed");
    };

    // An absurd length prefix: structured Malformed, then close.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    expect_malformed(raw, "oversized length prefix");

    // A zero-length frame is equally malformed.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap();
    expect_malformed(raw, "zero-length frame");

    // A well-framed payload with an unknown opcode.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&1u32.to_be_bytes()).unwrap();
    raw.write_all(&[0xEE]).unwrap();
    expect_malformed(raw, "unknown opcode");

    // A submit frame cut off mid-payload, then a hard close: the
    // server must neither panic nor hang on the half-frame.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&64u32.to_be_bytes()).unwrap();
    raw.write_all(&[1, 2, 3]).unwrap();
    drop(raw);

    // And after all of that abuse a fresh client is served normally.
    let mut client = Client::connect(addr).unwrap();
    let spec = QuerySpec::Containment(Mbr::new(-2.0, 48.0, 2.0, 52.0));
    assert!(client
        .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
        .unwrap()
        .is_ok());
    handle.shutdown();
}

#[test]
fn mid_query_disconnect_increments_cancelled_without_hurting_others() {
    // Large enough that the doomed join is still running when the
    // disconnect lands — the join pipeline is fast enough now that a
    // small dataset would finish inside the dispatch window.
    let objects = 60_000;
    let handle = serve(73, objects, ServerConfig::default());
    let addr = handle.addr();

    // Tenant A submits an expensive solo join and vanishes.
    let mut doomed = Client::connect(addr).unwrap();
    doomed
        .submit(
            0,
            &QuerySpec::Join((objects / 2) as u64),
            Priority::Batch,
            NO_TIMEOUT,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it dispatch
    drop(doomed); // disconnect trips the request's CancelToken

    wait_until("the disconnected join to count as cancelled", || {
        handle.scheduler_stats().cancelled >= 1
    });

    // Tenant B is unaffected: same server, correct result.
    let spec = QuerySpec::Aggregation {
        region: Mbr::new(-2.0, 48.0, 2.0, 52.0),
        metrics: MetricMask::ALL,
    };
    let ds = dataset(73, objects);
    let want = engine()
        .run(&[spec.to_query()], &ds, &ExecOptions::new())
        .and_then(|o| o.into_single())
        .unwrap();
    let mut survivor = Client::connect(addr).unwrap();
    let got = survivor
        .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
        .unwrap()
        .expect("survivor result");
    assert_eq!(got, want);
    handle.shutdown();
}

#[test]
fn deadline_and_overload_are_distinct_wire_errors() {
    // A zero budget: every batch submission is shed.
    let handle = serve(
        74,
        800,
        ServerConfig {
            queue_budget: 0.0,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let tile = QuerySpec::Containment(Mbr::new(-2.0, 48.0, 2.0, 52.0));

    let shed = client
        .query(0, &tile, Priority::Batch, NO_TIMEOUT)
        .unwrap()
        .expect_err("batch work must be shed at budget 0");
    assert_eq!(shed.code, ErrorCode::Overloaded);

    // Interactive ignores the budget but honours its deadline: a
    // zero-millisecond budget has elapsed before dispatch.
    let expired = client
        .query(0, &tile, Priority::Interactive, 0)
        .unwrap()
        .expect_err("a zero deadline must expire");
    assert_eq!(expired.code, ErrorCode::DeadlineExceeded);
    assert_ne!(shed.code, expired.code);

    // And an interactive query with room to breathe still succeeds.
    assert!(client
        .query(0, &tile, Priority::Interactive, NO_TIMEOUT)
        .unwrap()
        .is_ok());

    let stats = handle.stats();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    handle.shutdown();
}

#[test]
fn cancel_frame_aborts_an_inflight_query() {
    let handle = serve(75, 6_000, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let req = client
        .submit(0, &QuerySpec::Join(3_000), Priority::Batch, NO_TIMEOUT)
        .unwrap();
    client.cancel(req).unwrap();
    let err = client.wait(req).unwrap().expect_err("cancelled join");
    assert_eq!(err.code, ErrorCode::Cancelled);
    assert!(handle.stats().cancelled >= 1);

    // The connection survives a cancel and serves the next query.
    let spec = QuerySpec::Containment(Mbr::new(-2.0, 48.0, 2.0, 52.0));
    assert!(client
        .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
        .unwrap()
        .is_ok());
    handle.shutdown();
}

/// A scripted server that answers every pair of submits in *reverse*
/// order (a dummy `Combined` result echoing the request id) and every
/// stats request with `served = 42` — the advertised out-of-order
/// case, made deterministic.
fn spawn_reversing_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let write_frame = |stream: &mut TcpStream, payload: Vec<u8>| {
            stream
                .write_all(&(payload.len() as u32).to_be_bytes())
                .unwrap();
            stream.write_all(&payload).unwrap();
        };
        let mut batch = Vec::new();
        loop {
            let mut len = [0u8; 4];
            if stream.read_exact(&mut len).is_err() {
                break; // client gone — done
            }
            let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
            stream.read_exact(&mut payload).unwrap();
            match protocol::parse_request(&payload).unwrap() {
                Request::Submit { req_id, .. } => {
                    batch.push(req_id);
                    if batch.len() == 2 {
                        for id in batch.drain(..).rev() {
                            let result = QueryResult::Combined {
                                pairs: id,
                                total_union_area: 0.0,
                            };
                            write_frame(&mut stream, protocol::encode_result(id, &result));
                        }
                    }
                }
                Request::Stats => {
                    let report = StatsReport {
                        served: 42,
                        ..StatsReport::default()
                    };
                    write_frame(&mut stream, protocol::encode_stats_report(&report));
                }
                Request::Cancel { .. } => {}
            }
        }
    });
    (addr, handle)
}

#[test]
fn waits_keep_reading_the_socket_past_buffered_responses() {
    // Regression: wait() and stats() used to re-pop the pending
    // buffer they had already scanned, so once any unrelated response
    // was buffered they spun forever rotating it instead of reading
    // the stream. Run the client on its own thread so a regression
    // fails the test instead of hanging it.
    let (addr, server) = spawn_reversing_server();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let client_thread = std::thread::spawn(move || {
        let echo = |id| QueryResult::Combined {
            pairs: id,
            total_union_area: 0.0,
        };
        let spec = QuerySpec::Join(1);
        let mut client = Client::connect(addr).unwrap();
        let a = client
            .submit(0, &spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap();
        let b = client
            .submit(0, &spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap();
        // The server answers b first: waiting on a must buffer b's
        // response and keep reading.
        assert_eq!(client.wait(a).unwrap().unwrap(), echo(a));
        assert_eq!(client.wait(b).unwrap().unwrap(), echo(b));

        // Same out-of-order dance, but leave d's response buffered
        // when asking for stats.
        let c = client
            .submit(0, &spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap();
        let d = client
            .submit(0, &spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap();
        assert_eq!(client.wait(c).unwrap().unwrap(), echo(c));
        assert_eq!(client.stats().unwrap().served, 42);
        // The buffered response survived the stats call intact.
        assert_eq!(client.wait(d).unwrap().unwrap(), echo(d));
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("client livelocked on a buffered out-of-order response");
    client_thread.join().expect("client thread");
    server.join().expect("scripted server");
}

#[test]
fn duplicate_inflight_req_id_is_rejected() {
    let handle = serve(78, 2_000, ServerConfig::default());
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    // Two submits reusing id 7, sent back to back so the second is
    // parsed while the first (a join pass over the whole dataset) is
    // still in flight: the second must be refused — admitting it
    // would orphan one of the two tokens in the live map.
    let frame = protocol::encode_submit(7, 0, Priority::Batch, NO_TIMEOUT, &QuerySpec::Join(1_000));
    for _ in 0..2 {
        raw.write_all(&(frame.len() as u32).to_be_bytes()).unwrap();
        raw.write_all(&frame).unwrap();
    }
    match read_raw_response(&mut raw) {
        Some(Response::Error { req_id, code, .. }) => {
            assert_eq!(req_id, 7);
            assert_eq!(code, ErrorCode::Internal);
        }
        other => panic!("expected a duplicate-id rejection, got {other:?}"),
    }
    // The original request is unaffected: its result still arrives on
    // the same connection.
    match read_raw_response(&mut raw) {
        Some(Response::Result { req_id, .. }) => assert_eq!(req_id, 7),
        other => panic!("expected the original request's result, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn unknown_dataset_is_a_structured_error() {
    let handle = serve(76, 300, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client
        .query(99, &QuerySpec::Join(1), Priority::Interactive, NO_TIMEOUT)
        .unwrap()
        .expect_err("dataset 99 is not registered");
    assert_eq!(err.code, ErrorCode::UnknownDataset);
    handle.shutdown();
}

#[test]
fn stats_travel_the_wire_faithfully() {
    let handle = serve(77, 600, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let tile = QuerySpec::Aggregation {
        region: Mbr::new(-6.0, 44.0, 4.0, 56.0),
        metrics: MetricMask::ALL,
    };
    for _ in 0..3 {
        client
            .query(0, &tile, Priority::Interactive, NO_TIMEOUT)
            .unwrap()
            .expect("result");
    }
    let wire = client.stats().unwrap();
    let local = handle.stats();
    assert_eq!(wire, local, "the STATS frame answers the same snapshot");
    assert_eq!(wire.served, 3);
    // Identical aggregation predicates: the second and third are
    // answered by dedup or the cross-batch aggregate cache.
    assert!(wire.cache_hits + wire.dedup_hits >= 1);
    assert!(wire.interactive.completed == 3 && wire.batch.completed == 0);
    handle.shutdown();
}

#[test]
fn server_warm_starts_from_the_persist_store() {
    // Two incarnations of the server over the same persist root: the
    // first parses cold and spills through the store, the second
    // restores at registration and must serve bit-identical results
    // without a single parse pass — the serving layer's warm-start
    // contract end to end over real TCP.
    let root = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("server-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store_engine = || {
        Engine::builder()
            .threads(2)
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .cell_size(1.0)
            .persist_path(&root)
            .build()
    };
    let specs = [
        QuerySpec::Join(600),
        QuerySpec::Aggregation {
            region: Mbr::new(-2.0, 48.0, 2.0, 52.0),
            metrics: MetricMask::ALL,
        },
        QuerySpec::Containment(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
    ];
    let ds = dataset(81, 1_200);
    let lib = engine();
    let want: Vec<_> = specs
        .iter()
        .map(|s| {
            lib.run(&[s.to_query()], &ds, &ExecOptions::new())
                .and_then(|o| o.into_single())
                .unwrap()
        })
        .collect();

    // First incarnation: cold, every answer spilled through the store.
    let server = Server::with_config(QueryScheduler::new(store_engine()), ServerConfig::default());
    server.register(0, dataset(81, 1_200));
    let handle = server.serve("127.0.0.1:0".parse().unwrap()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (i, spec) in specs.iter().enumerate() {
        let got = client
            .query(0, spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap()
            .expect("cold result");
        assert_eq!(got, want[i], "cold incarnation diverged at spec {i}");
    }
    drop(client);
    handle.shutdown();

    // Simulated restart: fresh engine, scheduler and server over the
    // same root. Registration restores the snapshot.
    let server = Server::with_config(QueryScheduler::new(store_engine()), ServerConfig::default());
    server.register(0, dataset(81, 1_200));
    let handle = server.serve("127.0.0.1:0".parse().unwrap()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (i, spec) in specs.iter().enumerate() {
        let got = client
            .query(0, spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap()
            .expect("warm result");
        assert_eq!(got, want[i], "warm incarnation diverged at spec {i}");
    }
    let sched = handle.scheduler_stats();
    assert_eq!(
        sched.scan_passes, 0,
        "a warm-started server must answer without one parse pass"
    );
    assert!(
        sched.cache_hits >= 2,
        "restored aggregates serve the single-pass queries"
    );
    handle.shutdown();
}

#[test]
fn metric_selection_travels_the_wire() {
    // Each mask must come back bit-identical to the library query it
    // denotes: unselected metrics report zero, selected ones the full
    // value — and a count-only aggregate skips the measure math.
    let ds = dataset(79, 1_800);
    let lib = engine();
    let region = Mbr::new(-4.0, 46.0, 4.0, 54.0);
    let handle = serve(79, 1_800, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    for mask in [
        MetricMask::ALL,
        MetricMask(MetricMask::COUNT),
        MetricMask(MetricMask::AREA),
        MetricMask(MetricMask::COUNT | MetricMask::PERIMETER),
    ] {
        let spec = QuerySpec::Aggregation {
            region,
            metrics: mask,
        };
        let want = lib
            .run(&[spec.to_query()], &ds, &ExecOptions::new())
            .and_then(|o| o.into_single())
            .unwrap();
        let got = client
            .query(0, &spec, Priority::Interactive, NO_TIMEOUT)
            .unwrap()
            .unwrap_or_else(|e| panic!("mask {:#x}: {e:?}", mask.0));
        assert_eq!(got, want, "mask {:#x}", mask.0);
        if mask.0 == MetricMask::COUNT {
            let QueryResult::Aggregate(a) = &got else {
                panic!("aggregation must yield an aggregate");
            };
            assert!(a.count > 0, "workload region holds features");
            assert_eq!(a.total_area, 0.0, "unselected metric stays zero");
            assert_eq!(a.total_perimeter, 0.0, "unselected metric stays zero");
        }
    }
    handle.shutdown();
}
