//! Std-only stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so this vendored shim
//! implements the subset of criterion this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Throughput::Bytes` and `black_box`.
//!
//! Measurement is deliberately simple — warm up, then time
//! `sample_size` samples and report the median ns/iteration plus MB/s
//! when a byte throughput is set. `--test` (as passed by
//! `cargo bench -- --test` smoke runs) executes each benchmark body
//! once and reports `ok` without timing. A positional CLI argument
//! filters benchmarks by substring, as with real criterion.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace
//! layer map; this crate is one of the vendored offline dependency
//! shims supporting it.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a benchmark's work scales per iteration (only bytes are used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    samples: usize,
    result: &'a mut Option<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher<'_> {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            // Smoke mode still reports a throughput sample for the
            // `--json` perf gate: one untimed pass warms caches and
            // lazy setup, then the minimum of five timed passes
            // suppresses scheduler noise (min is the robust statistic
            // for a noisy-neighbour CI host). Still orders of
            // magnitude cheaper than full measurement.
            black_box(routine());
            let mut best = Duration::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                black_box(routine());
                best = best.min(t.elapsed());
            }
            *self.result = Some(best.max(Duration::from_nanos(1)));
            return;
        }
        // Warm-up: run until ~200ms elapsed to estimate cost and heat
        // caches, with at least one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut est = Duration::ZERO;
        while warm_start.elapsed() < Duration::from_millis(200) {
            let t = Instant::now();
            black_box(routine());
            est = t.elapsed();
            warm_iters += 1;
            if warm_iters >= 10_000 {
                break;
            }
        }
        // Aim for ~20ms per sample so cheap routines are timed in
        // batches large enough to swamp timer overhead.
        let per_iter = est.max(Duration::from_nanos(1));
        let iters_per_sample = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort_unstable();
        *self.result = Some(samples[samples.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sampling-mode hint (accepted, ignored).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Measurement-time hint (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.criterion.mode,
            samples: self.sample_size,
            result: &mut result,
        };
        f(&mut b);
        self.criterion.report(&full, result, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Sampling-mode hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum SamplingMode {
    /// Automatic.
    Auto,
    /// Flat sampling.
    Flat,
    /// Linear sampling.
    Linear,
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    /// When set (via `--json <path>` or `ATGIS_BENCH_JSON`), every
    /// benchmark appends one JSON line `{"bench","name","mode",
    /// "ns_per_iter","mb_per_s"}` to this file — the interchange
    /// format the `perfcmp` regression gate consumes.
    json: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        let mut json: Option<std::path::PathBuf> = std::env::var_os("ATGIS_BENCH_JSON")
            .filter(|v| !v.is_empty())
            .map(Into::into);
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => mode = Mode::TestOnce,
                "--bench" => {}
                "--json" => {
                    if let Some(path) = args.get(i + 1) {
                        json = Some(path.into());
                        i += 1;
                    }
                }
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
            i += 1;
        }
        Criterion { mode, filter, json }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.matches_filter(name) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            samples: 10,
            result: &mut result,
        };
        f(&mut b);
        self.report(name, result, None);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| full_name.contains(f))
            .unwrap_or(true)
    }

    fn report(&self, name: &str, result: Option<Duration>, throughput: Option<Throughput>) {
        self.report_json(name, result, throughput);
        match (self.mode, result) {
            (Mode::TestOnce, _) => println!("test {name} ... ok"),
            (Mode::Measure, Some(median)) => {
                let extra = match throughput {
                    Some(Throughput::Bytes(bytes)) if !median.is_zero() => {
                        let mbs = bytes as f64 / (1024.0 * 1024.0) / median.as_secs_f64();
                        format!("  {mbs:12.1} MB/s")
                    }
                    Some(Throughput::Elements(n)) if !median.is_zero() => {
                        let eps = n as f64 / median.as_secs_f64();
                        format!("  {eps:12.0} elem/s")
                    }
                    _ => String::new(),
                };
                println!("{name:<60} {:>12} ns/iter{extra}", median.as_nanos());
            }
            (Mode::Measure, None) => println!("{name:<60} (no measurement)"),
        }
    }

    /// Appends the machine-readable record for one finished benchmark.
    /// Failures to write are reported but never fail the bench run.
    fn report_json(&self, name: &str, result: Option<Duration>, throughput: Option<Throughput>) {
        use std::io::Write as _;
        let Some(path) = &self.json else { return };
        let Some(elapsed) = result else { return };
        let bench = std::env::args()
            .next()
            .and_then(|argv0| {
                std::path::Path::new(&argv0)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .map(|stem| {
                // Cargo suffixes bench binaries with a build hash
                // (`fig12_formats-1a2b…`); strip it so names are
                // stable across builds.
                match stem.rsplit_once('-') {
                    Some((base, hash))
                        if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    {
                        base.to_string()
                    }
                    _ => stem,
                }
            })
            .unwrap_or_default();
        let mbs = match throughput {
            Some(Throughput::Bytes(bytes)) if !elapsed.is_zero() => {
                format!(
                    "{:.3}",
                    bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64()
                )
            }
            _ => "null".to_string(),
        };
        let mode = match self.mode {
            Mode::Measure => "measure",
            Mode::TestOnce => "test",
        };
        let line = format!(
            "{{\"bench\":\"{bench}\",\"name\":\"{}\",\"mode\":\"{mode}\",\"ns_per_iter\":{},\"mb_per_s\":{mbs}}}\n",
            name.replace('\\', "\\\\").replace('"', "\\\""),
            elapsed.as_nanos(),
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!(
                "warning: cannot append bench JSON to {}: {e}",
                path.display()
            );
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
