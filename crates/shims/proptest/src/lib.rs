//! Std-only stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so this vendored shim
//! implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait (ranges, tuples, `prop_map`,
//! `prop_filter`), `prop::collection::vec`, `prop::sample::select`,
//! `bool::ANY`, `Just`, weighted [`prop_oneof!`], the [`proptest!`]
//! test macro and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   left to the assertion message;
//! * case generation is deterministic per test name (no persisted
//!   failure seeds);
//! * the default case count is 64 (upstream: 256) to keep the suite
//!   fast; tests that need more set `ProptestConfig::with_cases`.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace
//! layer map; this crate is one of the vendored offline dependency
//! shims supporting it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::Rng as _;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: combinators require `Self: Sized`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (re-draws, up to a cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason);
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of same-valued strategies (built by
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` pairs.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof needs positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.gen_u64() % self.total as u64;
            for (w, s) in &self.options {
                if roll < *w as u64 {
                    return s.new_value(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng_mut().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng_mut().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    use super::{Rng, SeedableRng, StdRng};

    /// Per-test deterministic random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from a test's name so each test has a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// The underlying generator.
        pub fn rng_mut(&mut self) -> &mut StdRng {
            &mut self.0
        }

        /// One raw draw.
        pub fn gen_u64(&mut self) -> u64 {
            self.0.gen::<u64>()
        }
    }

    /// Run configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform `bool` strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Accepted size specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.gen_u64() % span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T>(Vec<T>);

    /// Chooses one element of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[(rng.gen_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace alias used by `prelude::*` importers.
    pub mod prop {
        pub use super::super::{bool, collection, sample};
    }
}

/// Property-test entry macro. Mirrors proptest's surface grammar:
/// an optional `#![proptest_config(...)]` header followed by one or
/// more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted strategy union: `prop_oneof![w1 => s1, w2 => s2, ...]` or
/// unweighted `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(prop::sample::select(b"abc".to_vec()), 0..10)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.0..1.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_select(v in arb_bytes()) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|b| b"abc".contains(b)));
        }

        #[test]
        fn tuples_and_map(p in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(b in crate::bool::ANY) {
            let _ = b;
        }
    }

    #[test]
    fn oneof_mixes_options() {
        let s = prop_oneof![3 => 1.0..10.0f64, 1 => Just(f64::NAN)];
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let vals: Vec<f64> = (0..200).map(|_| s.new_value(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| !v.is_nan()));
    }

    #[test]
    fn filter_respects_predicate() {
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::deterministic("filter");
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }
}
