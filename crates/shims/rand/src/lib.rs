//! Std-only stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so this vendored shim
//! implements exactly the API surface the workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), `SeedableRng::seed_from_u64`,
//! and the `Rng` methods `gen`, `gen_bool` and `gen_range` over the
//! primitive types that appear in the codebase. The stream differs from
//! upstream `rand`'s StdRng, which is fine: callers rely on determinism
//! per seed, not on a specific stream.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace
//! layer map; this crate is one of the vendored offline dependency
//! shims supporting it.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`]. The sampled type `T` is a
/// trait parameter (not an associated type) so an untyped range
/// literal like `2..30` unifies with the call site's expected output
/// type, as with upstream rand.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; same seeding-by-u64 contract, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of plain % is avoided.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty gen_range");
                let span = ((e as $wide).wrapping_sub(s as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((s as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}
impl_range_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-30i32..-10);
            assert!((-30..-10).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn values_spread_across_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[cfg(test)]
mod inclusive_tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.gen_range(1u8..=6) {
                1 => lo_seen = true,
                6 => hi_seen = true,
                x => assert!((1..=6).contains(&x)),
            }
        }
        assert!(lo_seen && hi_seen, "both endpoints must be reachable");
        assert_eq!(rng.gen_range(3usize..=3), 3);
    }
}
