//! Aggregation transducers (§3.3).
//!
//! "An aggregation transducer has a transition function
//! `δ(q, s) → (a(q, t(s)), ε)` where the transformation function
//! `t : Σ → Q` converts each input symbol into a state, and an
//! aggregation function `a : Q × Q → Q` combines states. … if the
//! function is associative, the transformation only needs to store one
//! copy of the in-order state."
//!
//! The associative fragment of an AGT is therefore simply its state,
//! which is why [`AggregationTransducer`] requires `Q: Mergeable`.

use crate::merge::Mergeable;

/// An aggregation transducer: transforms each symbol into a partial
/// state and reduces with the state's associative merge.
pub struct AggregationTransducer<I, Q, F>
where
    Q: Mergeable,
    F: Fn(&I) -> Q,
{
    transform: F,
    _marker: std::marker::PhantomData<fn(&I) -> Q>,
}

impl<I, Q, F> AggregationTransducer<I, Q, F>
where
    Q: Mergeable,
    F: Fn(&I) -> Q,
{
    /// Wraps the transformation function `t : Σ → Q`.
    pub fn new(transform: F) -> Self {
        AggregationTransducer {
            transform,
            _marker: std::marker::PhantomData,
        }
    }

    /// Folds one symbol into an existing state.
    #[inline]
    pub fn absorb(&self, state: Q, sym: &I) -> Q {
        state.merge((self.transform)(sym))
    }

    /// Builds the fragment (= aggregated state) for a block.
    pub fn fragment(&self, block: &[I]) -> Q {
        block
            .iter()
            .fold(Q::identity(), |acc, s| self.absorb(acc, s))
    }

    /// Runs associatively over a `blocks`-way split.
    pub fn run_associative(&self, input: &[I], blocks: usize) -> Q {
        let chunk = input.len().div_ceil(blocks.max(1)).max(1);
        crate::merge::merge_tree(input.chunks(chunk).map(|b| self.fragment(b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{FSum, Sum};
    use proptest::prelude::*;

    #[test]
    fn count_aggregation() {
        let t = AggregationTransducer::new(|_: &u8| Sum(1));
        assert_eq!(t.fragment(b"hello"), Sum(5));
    }

    #[test]
    fn sum_aggregation() {
        let t = AggregationTransducer::new(|x: &f64| FSum(*x));
        assert_eq!(t.fragment(&[1.0, 2.0, 3.5]), FSum(6.5));
    }

    #[test]
    fn empty_block_is_identity() {
        let t = AggregationTransducer::new(|x: &u64| Sum(*x));
        assert_eq!(t.fragment(&[]), Sum(0));
    }

    #[test]
    fn partition_like_list_aggregation() {
        // The paper's Fig. 3 example: partitions aggregate object-id
        // lists with list concatenation as ⊗.
        let t = AggregationTransducer::new(|id: &u32| vec![*id]);
        let merged = t.fragment(&[1]).merge(t.fragment(&[2]));
        assert_eq!(merged, vec![1, 2]);
    }

    proptest! {
        #[test]
        fn associative_equals_sequential(
            input in prop::collection::vec(0u64..1000, 0..300),
            blocks in 1usize..16,
        ) {
            let t = AggregationTransducer::new(|x: &u64| Sum(*x));
            prop_assert_eq!(t.fragment(&input), t.run_associative(&input, blocks));
        }

        #[test]
        fn order_preserved_for_noncommutative_merge(
            input in prop::collection::vec(0u32..100, 0..100),
            blocks in 1usize..8,
        ) {
            // Vec concatenation is associative but NOT commutative —
            // the merge order must follow input order.
            let t = AggregationTransducer::new(|x: &u32| vec![*x]);
            prop_assert_eq!(t.run_associative(&input, blocks), input);
        }
    }
}
