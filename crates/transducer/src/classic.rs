//! A direct implementation of §3.1's formal model.
//!
//! This module exists to make the paper's construction executable and
//! testable in its original form: a fragment holds the state-mapping
//! relation `Q → Q` (for deterministic transducers the relation is a
//! function) and a set of output tapes *predicated* on the starting
//! state. It favours clarity over speed — the production lexers use the
//! table-driven [`crate::dfa`] module instead — and reproduces the
//! paper's running examples (the `ab`-matching transducer of Fig. 1 and
//! the composed counting transducer of §3.2) in its tests.

use crate::merge::Mergeable;

/// A deterministic transducer over symbols `S` producing tape values
/// `O` — the five-tuple `(Q, q0, Σ, Γ, δ)` of §3.1, with `Q` the index
/// range `0..num_states` and `δ` given by [`Transducer::step`].
pub trait Transducer {
    /// Input symbol type (Σ).
    type Sym;
    /// Output tape segment type (Γ*, under any associative ⊗).
    type Out: Mergeable + Clone;

    /// Number of states |Q|. States are `0..num_states`.
    fn num_states(&self) -> usize;
    /// The starting state q₀.
    fn start_state(&self) -> usize;
    /// The transition function δ: maps (state, symbol) to the next
    /// state and the tape value emitted by this step.
    fn step(&self, state: usize, sym: &Self::Sym) -> (usize, Self::Out);
}

/// A fragment of a classic associative transducer: for every possible
/// starting state, the finishing state and the (predicated) output
/// tape accumulated from that start.
///
/// The identity fragment maps every state to itself with empty tapes —
/// the "state mapping relation begins as the identity relation" of
/// §3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicFragment<O> {
    /// `entries[q] = (finishing state, tape)` when started in state `q`.
    pub entries: Vec<(usize, O)>,
}

impl<O: Mergeable + Clone> ClassicFragment<O> {
    /// The identity fragment over `n` states.
    pub fn identity(n: usize) -> Self {
        ClassicFragment {
            entries: (0..n).map(|q| (q, O::identity())).collect(),
        }
    }

    /// Builds the fragment for a single symbol — the per-symbol
    /// transformation of §3.1 ("we now transform each symbol in the
    /// input into a fragment independently").
    pub fn for_symbol<T>(t: &T, sym: &T::Sym) -> Self
    where
        T: Transducer<Out = O>,
    {
        ClassicFragment {
            entries: (0..t.num_states()).map(|q| t.step(q, sym)).collect(),
        }
    }

    /// Builds the fragment for a block of symbols by folding
    /// per-symbol steps from every starting state (speculation).
    pub fn for_block<T>(t: &T, block: &[T::Sym]) -> Self
    where
        T: Transducer<Out = O>,
    {
        let mut frag = ClassicFragment::identity(t.num_states());
        for sym in block {
            frag.apply(t, sym);
        }
        frag
    }

    /// The © operator of §3.1: extends every entry by one input symbol.
    pub fn apply<T>(&mut self, t: &T, sym: &T::Sym)
    where
        T: Transducer<Out = O>,
    {
        for entry in &mut self.entries {
            let (next, out) = t.step(entry.0, sym);
            entry.0 = next;
            let prev = std::mem::replace(&mut entry.1, O::identity());
            entry.1 = prev.merge(out);
        }
    }

    /// The ⊗ operator of §3.1: relation composition plus predicated
    /// tape concatenation. `self` covers the earlier input, `other` the
    /// later input.
    pub fn merge_with(&self, other: &ClassicFragment<O>) -> ClassicFragment<O> {
        ClassicFragment {
            entries: self
                .entries
                .iter()
                .map(|(mid, tape)| {
                    let (fin, tail) = &other.entries[*mid];
                    (*fin, tape.clone().merge(tail.clone()))
                })
                .collect(),
        }
    }

    /// Number of *distinct* finishing states — the convergence measure
    /// of §3.1 ("the number of distinct finishing states in a fragment
    /// cannot increase").
    pub fn distinct_finishing_states(&self) -> usize {
        let mut seen: Vec<usize> = self.entries.iter().map(|e| e.0).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Resolves the fragment with the true starting state, returning
    /// the finishing state and the realised output tape.
    pub fn resolve(&self, start: usize) -> (usize, O) {
        let (fin, tape) = &self.entries[start];
        (*fin, tape.clone())
    }
}

impl<O: Mergeable + Clone> Mergeable for ClassicFragment<O> {
    /// Note: the merge identity must carry no state information, so we
    /// use an empty marker that [`Mergeable::merge`] treats specially.
    fn identity() -> Self {
        ClassicFragment {
            entries: Vec::new(),
        }
    }

    fn merge(self, other: Self) -> Self {
        if self.entries.is_empty() {
            return other;
        }
        if other.entries.is_empty() {
            return self;
        }
        self.merge_with(&other)
    }
}

/// Runs a transducer sequentially from its start state — the baseline
/// the associative execution must agree with.
pub fn run_sequential<T: Transducer>(t: &T, input: &[T::Sym]) -> (usize, T::Out) {
    let mut state = t.start_state();
    let mut tape = T::Out::identity();
    for sym in input {
        let (next, out) = t.step(state, sym);
        state = next;
        tape = tape.merge(out);
    }
    (state, tape)
}

/// Runs a transducer associatively: splits `input` into `blocks`
/// roughly equal pieces, builds fragments independently, merges them
/// in a balanced tree and resolves against the true start state.
pub fn run_associative<T: Transducer>(t: &T, input: &[T::Sym], blocks: usize) -> (usize, T::Out) {
    let blocks = blocks.max(1);
    let chunk = input.len().div_ceil(blocks).max(1);
    let frags: Vec<ClassicFragment<T::Out>> = input
        .chunks(chunk)
        .map(|b| ClassicFragment::for_block(t, b))
        .collect();
    let merged = crate::merge::merge_tree(frags);
    if merged.entries.is_empty() {
        return (t.start_state(), T::Out::identity());
    }
    merged.resolve(t.start_state())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The Fig. 1 transducer: emits `*` each time the string `ab` is
    /// seen. States: 1 = no progress, 2 = saw `a`, 3 = emitted (then
    /// behaves like 1 / 2 depending on input). Re-indexed to 0-based.
    struct AbMatcher;

    impl Transducer for AbMatcher {
        type Sym = u8;
        type Out = Vec<char>;

        fn num_states(&self) -> usize {
            3
        }
        fn start_state(&self) -> usize {
            0
        }
        fn step(&self, state: usize, sym: &u8) -> (usize, Vec<char>) {
            match (state, *sym) {
                (0, b'a') | (2, b'a') => (1, vec![]),
                (1, b'a') => (1, vec![]),
                (1, b'b') => (2, vec!['*']),
                _ => (0, vec![]),
            }
        }
    }

    #[test]
    fn paper_example_matching_abab() {
        // §3.1: on "abab" the final tape is "**" regardless of start.
        let input = b"abab".to_vec();
        let (_, tape) = run_sequential(&AbMatcher, &input);
        assert_eq!(tape, vec!['*', '*']);

        // Per-symbol fragments merged associatively (the paper's
        // worked table).
        let frags: Vec<_> = input
            .iter()
            .map(|s| ClassicFragment::for_symbol(&AbMatcher, s))
            .collect();
        let ab1 = frags[0].merge_with(&frags[1]);
        let ab2 = frags[2].merge_with(&frags[3]);
        // "These intermediate results show the property of
        // convergence": after `ab` every start state finishes in the
        // same state.
        assert_eq!(ab1.distinct_finishing_states(), 1);
        let full = ab1.merge_with(&ab2);
        for q in 0..3 {
            let (fin, tape) = full.resolve(q);
            assert_eq!(fin, 2, "finishing state 3 (0-based 2) for any start");
            assert_eq!(tape, vec!['*', '*']);
        }
    }

    #[test]
    fn predicated_output_on_b() {
        // The fragment for a lone `b` emits `*` only when started in
        // state 2 (0-based 1) — the paper's predicated-output example.
        let frag = ClassicFragment::for_symbol(&AbMatcher, &b'b');
        assert_eq!(frag.resolve(0).1, Vec::<char>::new());
        assert_eq!(frag.resolve(1).1, vec!['*']);
        assert_eq!(frag.resolve(2).1, Vec::<char>::new());
    }

    /// §3.2's composition: the counting transducer stacked on the
    /// matcher. Composition stores the *count fragment* (a `Sum`) on
    /// the matcher's tape instead of `*` characters.
    struct AbCounter;

    impl Transducer for AbCounter {
        type Sym = u8;
        type Out = crate::merge::Sum;

        fn num_states(&self) -> usize {
            3
        }
        fn start_state(&self) -> usize {
            0
        }
        fn step(&self, state: usize, sym: &u8) -> (usize, crate::merge::Sum) {
            let (next, tape) = AbMatcher.step(state, sym);
            (next, crate::merge::Sum(tape.len() as u64))
        }
    }

    #[test]
    fn paper_example_counting_composition() {
        let input = b"abaabbab".to_vec();
        let (_, count) = run_sequential(&AbCounter, &input);
        assert_eq!(count.0, 3, "ab occurs 3 times");
        let (_, assoc) = run_associative(&AbCounter, &input, 5);
        assert_eq!(assoc.0, 3);
    }

    #[test]
    fn identity_fragment_resolves_to_self() {
        let id = ClassicFragment::<Vec<char>>::identity(3);
        for q in 0..3 {
            let (fin, tape) = id.resolve(q);
            assert_eq!(fin, q);
            assert!(tape.is_empty());
        }
    }

    #[test]
    fn convergence_is_monotone() {
        // Distinct finishing states never increase as symbols are
        // applied.
        let mut frag = ClassicFragment::<Vec<char>>::identity(3);
        let mut prev = frag.distinct_finishing_states();
        for sym in b"aabbaabxyzab" {
            frag.apply(&AbMatcher, sym);
            let cur = frag.distinct_finishing_states();
            assert!(cur <= prev, "convergence violated: {prev} -> {cur}");
            prev = cur;
        }
    }

    proptest! {
        #[test]
        fn split_invariance(input in prop::collection::vec(prop::sample::select(
            vec![b'a', b'b', b'c']), 0..64), cut in 0usize..64) {
            let cut = cut.min(input.len());
            let (left, right) = input.split_at(cut);
            let fl = ClassicFragment::for_block(&AbMatcher, left);
            let fr = ClassicFragment::for_block(&AbMatcher, right);
            let merged = fl.merge_with(&fr);
            let whole = ClassicFragment::for_block(&AbMatcher, &input);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn associative_equals_sequential(
            input in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..200),
            blocks in 1usize..17,
        ) {
            let seq = run_sequential(&AbMatcher, &input);
            let par = run_associative(&AbMatcher, &input, blocks);
            prop_assert_eq!(seq, par);
        }

        #[test]
        fn merge_is_associative(
            a in prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..20),
            b in prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..20),
            c in prop::collection::vec(prop::sample::select(vec![b'a', b'b']), 0..20),
        ) {
            let (fa, fb, fc) = (
                ClassicFragment::for_block(&AbMatcher, &a),
                ClassicFragment::for_block(&AbMatcher, &b),
                ClassicFragment::for_block(&AbMatcher, &c),
            );
            let left = fa.merge_with(&fb).merge_with(&fc);
            let right = fa.merge_with(&fb.merge_with(&fc));
            prop_assert_eq!(left, right);
        }
    }
}
