//! Table-driven byte-level deterministic finite transducers and their
//! speculative fragments.
//!
//! §3.3: "Lexing is handled by finite transducers optimised for small
//! transition tables. As a transition must be performed after each
//! byte, precomputation is used for all the transition tables." A
//! [`ByteDfa`] stores one flattened `state × byte` table whose entries
//! pack the next state and the emitted action into a single `u16`
//! ([`ByteDfa::step`]); the associative execution runs a block from
//! every possible starting state ([`DfaFragment::run_block`]) and
//! merges per-start tapes with relation composition.
//!
//! Two scan optimisations make the hot path memory-bound rather than
//! dispatch-bound (the skip-to-structural-byte technique of
//! simdjson/Mison-style raw scanners):
//!
//! * **per-state skip classes** — [`DfaBuilder::build`] computes, for
//!   every state, the 256-bit set of *interesting* bytes (anything
//!   that leaves the state or emits an action). States with at most
//!   four interesting bytes get a SWAR scanner that tests 8 input
//!   bytes per iteration; sparse states fall back to a bitmap probe,
//!   and dense states to the plain table walk. Skipped bytes are
//!   provably self-loops with no action, so output is bit-identical.
//! * **prefix/shared tapes** — the fragment exploits *convergence*
//!   (§3.1): speculation proceeds byte-by-byte only until every
//!   speculative run reaches the same state, after which a single
//!   shared run covers the rest of the block. The shared tape is
//!   stored **once** per fragment instead of being cloned into every
//!   per-start entry (the paper's output-matrix tape sharing), and
//!   merges move tapes instead of cloning them.

use crate::merge::Mergeable;
use crate::scan::{eq_mask, SWAR_LO};

/// Action id meaning "emit nothing".
pub const NO_ACTION: u8 = 0;

/// How the bulk scanner skips a state's uninteresting bytes.
#[derive(Debug, Clone)]
enum SkipClass {
    /// No interesting bytes: the whole rest of the block is skipped.
    All,
    /// At most two interesting bytes (broadcast words, padded with a
    /// duplicate): minimal SWAR mask — the string-interior case.
    Few2([u64; 2]),
    /// Three to eight interesting bytes: wider SWAR mask, 8 input
    /// bytes per iteration, hits consumed bit-by-bit within the word.
    Few8([u64; 8]),
    /// Arbitrary sparse set: per-byte 256-bit bitmap probe.
    Bitmap,
    /// Mostly interesting bytes: skipping would not pay; walk the
    /// table directly.
    Dense,
}

/// A deterministic byte-level finite transducer with a precomputed
/// flattened transition+action table.
#[derive(Debug, Clone)]
pub struct ByteDfa {
    n_states: usize,
    start: u8,
    /// `table[state * 256 + byte]` = `next_state | action << 8`.
    table: Vec<u16>,
    /// Per-state interesting-byte sets (bit set ⇒ the byte either
    /// leaves the state or emits an action).
    interesting: Vec<[u64; 4]>,
    /// Per-state scanner selection derived from `interesting`.
    skip: Vec<SkipClass>,
}

#[inline]
fn bit(map: &[u64; 4], b: u8) -> bool {
    map[(b >> 6) as usize] >> (b & 63) & 1 == 1
}

/// Little-endian 8-byte load at `pos`.
///
/// # Safety
/// Caller must guarantee `pos + 8 <= bytes.len()`.
#[inline(always)]
unsafe fn load_word(bytes: &[u8], pos: usize) -> u64 {
    debug_assert!(pos + 8 <= bytes.len());
    u64::from_le(bytes.as_ptr().add(pos).cast::<u64>().read_unaligned())
}

/// The per-word hit mask: bit `0x80 << 8k` set iff byte `k` of `w`
/// equals any needle broadcast in `bc` (padding entries are
/// duplicates; the needle count is a compile-time constant so each
/// skip class gets an exactly-sized branch-free mask).
#[inline(always)]
fn hits<const N: usize>(w: u64, bc: &[u64; N]) -> u64 {
    let mut out = 0u64;
    for &b in bc {
        out |= eq_mask(w, b);
    }
    out
}

/// Position of the first byte whose bit is set in `map`, at or after
/// `pos` (or `bytes.len()`).
#[inline]
fn bitmap_find(map: &[u64; 4], bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() && !bit(map, bytes[pos]) {
        pos += 1;
    }
    pos
}

impl ByteDfa {
    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n_states
    }

    /// The designated starting state.
    #[inline]
    pub fn start_state(&self) -> u8 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u8, byte: u8) -> (u8, u8) {
        let e = self.table[(state as usize) << 8 | byte as usize];
        (e as u8, (e >> 8) as u8)
    }

    /// The interesting-byte set of `state` (bytes that leave the state
    /// or emit an action). Skipping a byte outside this set cannot
    /// change the run's outcome.
    #[inline]
    pub fn interesting_set(&self, state: u8) -> &[u64; 4] {
        &self.interesting[state as usize]
    }

    /// Runs sequentially from `state`, invoking `emit(action, position)`
    /// for every non-zero action. Returns the final state.
    ///
    /// The scan is word-at-a-time: for SWAR-class states the 8-byte
    /// hit mask is computed once and its set bits are consumed in
    /// place while the state is stable (self-transitions on structural
    /// bytes, e.g. commas and brackets outside strings, stay inside
    /// the word loop), so neither skipped runs nor hit-dense runs
    /// rescan input.
    pub fn run<F: FnMut(u8, u64)>(
        &self,
        mut state: u8,
        bytes: &[u8],
        base: u64,
        mut emit: F,
    ) -> u8 {
        let len = bytes.len();
        let mut pos = 0usize;
        'class: while pos < len {
            match &self.skip[state as usize] {
                // Self-loops with no action forever: nothing left to do.
                SkipClass::All => return state,
                SkipClass::Dense => {
                    while pos < len {
                        let (next, action) = self.step(state, bytes[pos]);
                        if action != NO_ACTION {
                            emit(action, base + pos as u64);
                        }
                        pos += 1;
                        if next != state {
                            state = next;
                            continue 'class;
                        }
                    }
                }
                SkipClass::Few2(bc) => {
                    match self.run_few(bc, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => pos = p,
                        None => pos = len,
                    }
                }
                SkipClass::Few8(bc) => {
                    match self.run_few(bc, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => pos = p,
                        None => pos = len,
                    }
                }
                SkipClass::Bitmap => {
                    let map = &self.interesting[state as usize];
                    while pos < len {
                        let b = bytes[pos];
                        if bit(map, b) {
                            let (next, action) = self.step(state, b);
                            if action != NO_ACTION {
                                emit(action, base + pos as u64);
                            }
                            pos += 1;
                            if next != state {
                                state = next;
                                continue 'class;
                            }
                        } else {
                            pos += 1;
                        }
                    }
                }
            }
        }
        state
    }

    /// Word-mask scan for one SWAR-class state: computes each 8-byte
    /// hit mask once and consumes its set bits in place while the
    /// state is stable. Returns `Some(resume_pos)` when the state
    /// changed (the caller re-dispatches on the new state's class) or
    /// `None` when the input is exhausted.
    #[inline(always)]
    fn run_few<const N: usize, F: FnMut(u8, u64)>(
        &self,
        bc: &[u64; N],
        state: &mut u8,
        bytes: &[u8],
        mut pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        let len = bytes.len();
        while pos + 8 <= len {
            // SAFETY: the loop condition guarantees 8 readable bytes.
            let w = unsafe { load_word(bytes, pos) };
            let mut h = hits(w, bc);
            while h != 0 {
                let i = pos + (h.trailing_zeros() >> 3) as usize;
                let (next, action) = self.step(*state, bytes[i]);
                if action != NO_ACTION {
                    emit(action, base + i as u64);
                }
                if next != *state {
                    *state = next;
                    return Some(i + 1);
                }
                h &= h - 1;
            }
            pos += 8;
        }
        // Sub-word tail.
        let map = &self.interesting[*state as usize];
        while pos < len {
            let b = bytes[pos];
            if bit(map, b) {
                let (next, action) = self.step(*state, b);
                if action != NO_ACTION {
                    emit(action, base + pos as u64);
                }
                pos += 1;
                if next != *state {
                    *state = next;
                    return Some(pos);
                }
            } else {
                pos += 1;
            }
        }
        None
    }

    /// The pre-optimisation byte-at-a-time loop, kept as the reference
    /// implementation for differential tests and scan benchmarks.
    pub fn run_bytewise<F: FnMut(u8, u64)>(
        &self,
        mut state: u8,
        bytes: &[u8],
        base: u64,
        mut emit: F,
    ) -> u8 {
        for (i, &b) in bytes.iter().enumerate() {
            let (next, action) = self.step(state, b);
            if action != NO_ACTION {
                emit(action, base + i as u64);
            }
            state = next;
        }
        state
    }
}

/// Builder for [`ByteDfa`]. States are added explicitly; transitions
/// default to self-loops with no action until overridden.
#[derive(Debug, Clone, Default)]
pub struct DfaBuilder {
    trans: Vec<[u8; 256]>,
    actions: Vec<[u8; 256]>,
    start: u8,
}

impl DfaBuilder {
    /// Creates a builder with `n` states (all self-looping), starting
    /// in state `start`.
    pub fn new(n: usize, start: u8) -> Self {
        assert!(n > 0 && n <= 255, "state count must be in 1..=255");
        assert!((start as usize) < n);
        let mut trans = Vec::with_capacity(n);
        for s in 0..n {
            trans.push([s as u8; 256]);
        }
        DfaBuilder {
            trans,
            actions: vec![[NO_ACTION; 256]; n],
            start,
        }
    }

    /// Sets the transition for every byte from `from` to `to`
    /// (a "default" edge; override specific bytes afterwards).
    pub fn default_transition(&mut self, from: u8, to: u8) -> &mut Self {
        self.trans[from as usize] = [to; 256];
        self
    }

    /// Sets the transition for one byte.
    pub fn transition(&mut self, from: u8, byte: u8, to: u8) -> &mut Self {
        self.trans[from as usize][byte as usize] = to;
        self
    }

    /// Sets transitions for every byte in `bytes`.
    pub fn transitions(&mut self, from: u8, bytes: &[u8], to: u8) -> &mut Self {
        for &b in bytes {
            self.trans[from as usize][b as usize] = to;
        }
        self
    }

    /// Attaches an action to one byte consumed in `from`.
    pub fn action(&mut self, from: u8, byte: u8, action: u8) -> &mut Self {
        self.actions[from as usize][byte as usize] = action;
        self
    }

    /// Attaches an action to every byte in `bytes` consumed in `from`.
    pub fn action_on(&mut self, from: u8, bytes: &[u8], action: u8) -> &mut Self {
        for &b in bytes {
            self.actions[from as usize][b as usize] = action;
        }
        self
    }

    /// Finalises the automaton: flattens the tables and computes the
    /// per-state interesting-byte sets and skip classes the bulk
    /// scanner uses.
    pub fn build(self) -> ByteDfa {
        let n = self.trans.len();
        let mut table = Vec::with_capacity(n * 256);
        let mut interesting = Vec::with_capacity(n);
        let mut skip = Vec::with_capacity(n);
        for s in 0..n {
            let mut map = [0u64; 4];
            let mut needles: Vec<u8> = Vec::new();
            for b in 0..256usize {
                let next = self.trans[s][b];
                let action = self.actions[s][b];
                table.push(next as u16 | (action as u16) << 8);
                if next != s as u8 || action != NO_ACTION {
                    map[b >> 6] |= 1u64 << (b & 63);
                    if needles.len() < 8 {
                        needles.push(b as u8);
                    }
                }
            }
            let count = map.iter().map(|w| w.count_ones()).sum::<u32>();
            skip.push(match count {
                0 => SkipClass::All,
                1..=2 => {
                    let mut bc = [SWAR_LO.wrapping_mul(needles[0] as u64); 2];
                    for (slot, &n) in bc.iter_mut().zip(&needles) {
                        *slot = SWAR_LO.wrapping_mul(n as u64);
                    }
                    SkipClass::Few2(bc)
                }
                3..=8 => {
                    let mut bc = [SWAR_LO.wrapping_mul(needles[0] as u64); 8];
                    for (slot, &n) in bc.iter_mut().zip(&needles) {
                        *slot = SWAR_LO.wrapping_mul(n as u64);
                    }
                    SkipClass::Few8(bc)
                }
                // Past ~1/3 interesting bytes the probe loop stops
                // paying for itself; walk the table.
                9..=96 => SkipClass::Bitmap,
                _ => SkipClass::Dense,
            });
            interesting.push(map);
        }
        ByteDfa {
            n_states: n,
            start: self.start,
            table,
            interesting,
            skip,
        }
    }
}

/// A speculative fragment of a byte DFA run over one block.
///
/// Per-start tapes are split into a *prefix* (the bytes scanned before
/// the speculative runs converged, one tape per start state) and a
/// single *shared* suffix tape covering everything after convergence —
/// §3.1's output-matrix tape sharing made explicit. The realised tape
/// of a start state is `prefix ⊗ shared`; [`DfaFragment::resolve`] and
/// [`DfaFragment::into_entries`] perform that composition on demand,
/// so building and merging fragments never clones the (typically
/// dominant) shared tape.
#[derive(Debug, Clone)]
pub struct DfaFragment<O> {
    /// `(start, finish, prefix tape)` triples, one per speculated
    /// start state.
    entries: Vec<(u8, u8, O)>,
    /// Tape of the converged suffix, shared by every entry (identity
    /// when the block never converged).
    shared: O,
    /// True when every entry finishes in the same state (the shared
    /// phase ran, or the block ended exactly at convergence).
    converged: bool,
}

impl<O: Mergeable + Clone> DfaFragment<O> {
    /// Builds the fragment for `bytes` speculating from each state in
    /// `starts`. `build(tape, action, absolute_position, byte)` folds
    /// emitted actions into the per-start tape; `base` is the block's
    /// absolute offset in the input, so emitted positions are global.
    ///
    /// The speculative phase advances all runs in lockstep, skipping
    /// bytes that are uninteresting to *every* live state (the
    /// intersection of the per-state skip sets); once all runs
    /// converge, a single bulk-scanned shared run covers the rest of
    /// the block and its tape is stored once.
    pub fn run_block<F>(dfa: &ByteDfa, starts: &[u8], bytes: &[u8], base: u64, mut build: F) -> Self
    where
        F: FnMut(&mut O, u8, u64, u8),
    {
        let mut states: Vec<u8> = starts.to_vec();
        let mut tapes: Vec<O> = starts.iter().map(|_| O::identity()).collect();
        let mut pos = 0usize;

        // Speculative phase: all start states in lockstep until
        // convergence. Bytes uninteresting to every live state are
        // self-loops with no action for all runs, so they can be
        // skipped wholesale via the ANDed interesting sets.
        let mut live = combined_interesting(dfa, &states);
        while pos < bytes.len() {
            let converged = states.windows(2).all(|w| w[0] == w[1]);
            if converged {
                break;
            }
            if !bit(&live, bytes[pos]) {
                pos = bitmap_find(&live, bytes, pos + 1);
                if pos >= bytes.len() {
                    break;
                }
            }
            let b = bytes[pos];
            for (state, tape) in states.iter_mut().zip(tapes.iter_mut()) {
                let (next, action) = dfa.step(*state, b);
                if action != NO_ACTION {
                    build(tape, action, base + pos as u64, b);
                }
                *state = next;
            }
            live = combined_interesting(dfa, &states);
            pos += 1;
        }

        // Shared phase: one bulk-scanned run, tape stored once.
        let mut shared = O::identity();
        let converged = states.windows(2).all(|w| w[0] == w[1]);
        if converged && pos < bytes.len() {
            let fin = dfa.run(states[0], &bytes[pos..], base + pos as u64, |action, p| {
                build(&mut shared, action, p, bytes[(p - base) as usize]);
            });
            for state in states.iter_mut() {
                *state = fin;
            }
        }

        DfaFragment {
            entries: starts
                .iter()
                .zip(states)
                .zip(tapes)
                .map(|((&s, f), t)| (s, f, t))
                .collect(),
            shared,
            converged,
        }
    }

    /// Builds a fragment from fully-realised `(start, finish, tape)`
    /// entries (no shared suffix) — the representation produced by
    /// independent per-start runs, e.g. the reference byte-loop lexer.
    pub fn from_entries(entries: Vec<(u8, u8, O)>) -> Self {
        let converged = !entries.is_empty() && entries.windows(2).all(|w| w[0].1 == w[1].1);
        DfaFragment {
            entries,
            shared: O::identity(),
            converged,
        }
    }

    /// True for the merge identity (no speculated entries).
    pub fn is_identity(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(start, finish)` pairs of the speculation relation.
    pub fn relation(&self) -> impl Iterator<Item = (u8, u8)> + '_ {
        self.entries.iter().map(|(s, f, _)| (*s, *f))
    }

    /// Realises the per-start tapes: `prefix ⊗ shared` for every
    /// entry. The shared tape is moved into the last entry and cloned
    /// for the others — the only place a shared tape is ever copied.
    pub fn into_entries(self) -> Vec<(u8, u8, O)> {
        let mut out = Vec::with_capacity(self.entries.len());
        let mut shared = Some(self.shared);
        let mut it = self.entries.into_iter().peekable();
        while let Some((s, f, prefix)) = it.next() {
            let suffix = if it.peek().is_some() {
                shared.as_ref().expect("shared live until last").clone()
            } else {
                shared.take().expect("shared live until last")
            };
            out.push((s, f, prefix.merge(suffix)));
        }
        out
    }

    /// Relation composition: for every entry of `self`, chase its
    /// finishing state through `other`. Returns `None` when `other`
    /// did not speculate from a state `self` finishes in (a speculation
    /// set mismatch — callers either speculate on all states or prove
    /// the set closed under transitions).
    ///
    /// Consumes both fragments: tapes are moved, not cloned, except
    /// when several entries of `self` finish in the same mid state and
    /// must share one tail (only the small pre-convergence prefixes
    /// are ever duplicated).
    pub fn try_merge_with(self, other: DfaFragment<O>) -> Option<DfaFragment<O>> {
        if self.converged {
            // All mids are equal: compose the shared chain once —
            // result shared = self.shared ⊗ other(mid) — with zero
            // clones of either shared tape.
            let mid = self.entries.first().map(|e| e.1)?;
            let (fin, tail) = other.realize_for(mid)?;
            let entries = self
                .entries
                .into_iter()
                .map(|(s, _, prefix)| (s, fin, prefix))
                .collect();
            return Some(DfaFragment {
                entries,
                shared: self.shared.merge(tail),
                converged: true,
            });
        }

        // Unconverged left: self.shared is identity and mids may
        // differ. Each entry's prefix absorbs other's matching prefix
        // tape; other's shared tape (identity unless other converged,
        // in which case it is common to every chased entry) hoists
        // into the result's shared slot unchanged — so the dominant
        // tape is moved exactly once, never cloned.
        let other_converged = other.converged;
        let mut slots: Vec<(u8, u8, Option<O>)> = other
            .entries
            .into_iter()
            .map(|(s, f, p)| (s, f, Some(p)))
            .collect();
        // Reference counts decide move-vs-clone: the last entry
        // chasing a given mid state moves the tail prefix out.
        let mut refs = vec![0usize; slots.len()];
        for (_, mid, _) in &self.entries {
            let j = slots.iter().position(|(st, _, _)| st == mid)?;
            refs[j] += 1;
        }
        let mut entries = Vec::with_capacity(self.entries.len());
        for (s, mid, prefix) in self.entries {
            let j = slots
                .iter()
                .position(|(st, _, _)| *st == mid)
                .expect("checked above");
            refs[j] -= 1;
            let tail = if refs[j] == 0 {
                slots[j].2.take().expect("taken once")
            } else {
                slots[j].2.as_ref().expect("live until last ref").clone()
            };
            entries.push((s, slots[j].1, prefix.merge(tail)));
        }
        let converged =
            other_converged || entries.windows(2).all(|w: &[(u8, u8, O)]| w[0].1 == w[1].1);
        Some(DfaFragment {
            entries,
            shared: other.shared,
            converged,
        })
    }

    /// Realises the tape for the entry starting at `start`, consuming
    /// the fragment: `prefix ⊗ shared` with both moved, no clones.
    fn realize_for(self, start: u8) -> Option<(u8, O)> {
        let shared = self.shared;
        self.entries
            .into_iter()
            .find(|(s, _, _)| *s == start)
            .map(|(_, f, prefix)| (f, prefix.merge(shared)))
    }

    /// Resolves against the true starting state, realising its tape.
    pub fn resolve(&self, start: u8) -> Option<(u8, O)> {
        self.entries
            .iter()
            .find(|(s, _, _)| *s == start)
            .map(|(_, f, prefix)| (*f, prefix.clone().merge(self.shared.clone())))
    }

    /// Distinct finishing states (convergence measure).
    pub fn distinct_finishing_states(&self) -> usize {
        let mut fins: Vec<u8> = self.entries.iter().map(|e| e.1).collect();
        fins.sort_unstable();
        fins.dedup();
        fins.len()
    }
}

/// OR of the interesting sets of the live states: a byte may be
/// skipped in lockstep only when it is uninteresting to *every* live
/// run, i.e. outside the union of their interesting sets. (The
/// speculation set is tiny, so the quadratic dedup beats any table.)
#[inline]
fn combined_interesting(dfa: &ByteDfa, states: &[u8]) -> [u64; 4] {
    let mut map = [0u64; 4];
    for (i, &s) in states.iter().enumerate() {
        if states[..i].contains(&s) {
            continue;
        }
        let m = dfa.interesting_set(s);
        for (acc, w) in map.iter_mut().zip(m) {
            *acc |= w;
        }
    }
    map
}

impl<O: Mergeable + Clone + PartialEq> PartialEq for DfaFragment<O> {
    /// Logical equality over *realised* tapes: fragments that split
    /// prefix/shared differently but resolve identically are equal.
    fn eq(&self, other: &Self) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries.iter().zip(&other.entries).all(|(a, b)| {
            a.0 == b.0
                && a.1 == b.1
                && a.2.clone().merge(self.shared.clone()) == b.2.clone().merge(other.shared.clone())
        })
    }
}

impl<O: Mergeable + Clone> Mergeable for DfaFragment<O> {
    fn identity() -> Self {
        DfaFragment {
            entries: Vec::new(),
            shared: O::identity(),
            converged: false,
        }
    }

    fn merge(self, other: Self) -> Self {
        if self.entries.is_empty() {
            return other;
        }
        if other.entries.is_empty() {
            return self;
        }
        self.try_merge_with(other)
            .expect("DFA fragment merge: speculation set not closed under transitions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A miniature JSON-string lexer: state 0 = outside string,
    /// 1 = inside string, 2 = inside string after backslash.
    /// Action 1 = structural comma seen outside a string.
    fn string_lexer() -> ByteDfa {
        let mut b = DfaBuilder::new(3, 0);
        b.transition(0, b'"', 1)
            .action(0, b',', 1)
            .default_transition(1, 1)
            .transition(1, b'"', 0)
            .transition(1, b'\\', 2)
            .default_transition(2, 1);
        b.build()
    }

    fn count_commas_seq(input: &[u8]) -> u64 {
        let dfa = string_lexer();
        let mut n = 0;
        dfa.run(0, input, 0, |_, _| n += 1);
        n
    }

    fn frag(input: &[u8], base: u64) -> DfaFragment<Vec<u64>> {
        let dfa = string_lexer();
        DfaFragment::run_block(
            &dfa,
            &[0, 1, 2],
            input,
            base,
            |tape: &mut Vec<u64>, _a, pos, _b| tape.push(pos),
        )
    }

    #[test]
    fn sequential_lexing_skips_quoted_commas() {
        assert_eq!(count_commas_seq(b"a,b,\"x,y\",c,"), 4);
        assert_eq!(count_commas_seq(b"\"a,b\""), 0);
        assert_eq!(count_commas_seq(br#""esc\",still,string",out,"#), 2);
    }

    #[test]
    fn bulk_scan_matches_bytewise_reference() {
        let dfa = string_lexer();
        for input in [
            &b""[..],
            b"plain text without anything interesting at all........",
            b"a,b,\"x,y\",c,",
            br#""esc\",still,string",out,"#,
            b"\\\\\\\"\"\",,,",
            b"ends with quote\"",
            b"0123456\"78,\\",
        ] {
            for start in 0u8..3 {
                let mut fast = Vec::new();
                let mut slow = Vec::new();
                let ff = dfa.run(start, input, 7, |a, p| fast.push((a, p)));
                let fs = dfa.run_bytewise(start, input, 7, |a, p| slow.push((a, p)));
                assert_eq!(ff, fs, "final state, start={start}, input={input:?}");
                assert_eq!(fast, slow, "tape, start={start}, input={input:?}");
            }
        }
    }

    #[test]
    fn skip_classes_are_assigned() {
        // State 1 (in-string) has exactly two interesting bytes — the
        // SWAR class; a state with none gets All; a default-transition
        // state to elsewhere is Dense.
        let dfa = string_lexer();
        assert!(matches!(dfa.skip[1], SkipClass::Few2(..)));
        assert!(matches!(dfa.skip[2], SkipClass::Dense));
        let sink = DfaBuilder::new(1, 0).build();
        assert!(matches!(sink.skip[0], SkipClass::All));
        let mut wide = DfaBuilder::new(2, 0);
        for b in 0..90u8 {
            wide.transition(0, b, 1);
        }
        let wide = wide.build();
        assert!(matches!(wide.skip[0], SkipClass::Bitmap));
    }

    #[test]
    fn flattened_table_step_agrees_with_builder_spec() {
        let dfa = string_lexer();
        assert_eq!(dfa.step(0, b','), (0, 1));
        assert_eq!(dfa.step(0, b'"'), (1, 0));
        assert_eq!(dfa.step(1, b'x'), (1, 0));
        assert_eq!(dfa.step(1, b'\\'), (2, 0));
        assert_eq!(dfa.step(2, b'"'), (1, 0));
        assert_eq!(dfa.num_states(), 3);
        assert_eq!(dfa.start_state(), 0);
    }

    #[test]
    fn fragment_resolves_like_sequential() {
        let input = br#"k,"v,1",x,"#;
        let f = frag(input, 0);
        let (fin, tape) = f.resolve(0).unwrap();
        assert_eq!(fin, 0);
        assert_eq!(tape.len() as u64, count_commas_seq(input));
    }

    #[test]
    fn speculation_covers_in_string_starts() {
        // Block starting mid-string: from state 1 the leading `x",` has
        // its comma counted only after the closing quote.
        let input = b"x\",a,";
        let f = frag(input, 0);
        let (fin0, tape0) = f.resolve(0).unwrap();
        let (fin1, tape1) = f.resolve(1).unwrap();
        assert_eq!(fin0, 1, "from outside: quote opens a string");
        assert_eq!(fin1, 0, "from inside: quote closes the string");
        assert_eq!(tape0.len(), 0, "everything after the quote is in-string");
        assert_eq!(tape1.len(), 2);
    }

    #[test]
    fn merge_positions_are_absolute() {
        let left = b"a,b";
        let right = b",c,";
        let f = frag(left, 0).merge(frag(right, left.len() as u64));
        let (_, tape) = f.resolve(0).unwrap();
        assert_eq!(tape, vec![1, 3, 5]);
    }

    #[test]
    fn identity_merges() {
        let f = frag(b"a,b,", 0);
        let id = DfaFragment::<Vec<u64>>::identity();
        assert_eq!(id.clone().merge(f.clone()), f.clone().merge(id));
    }

    #[test]
    fn into_entries_realises_shared_suffix() {
        let input = b"xx\"shared,part,with,commas";
        let f = frag(input, 0);
        let entries = f.clone().into_entries();
        assert_eq!(entries.len(), 3);
        for (s, f2, tape) in entries {
            let (fin, want) = f.resolve(s).unwrap();
            assert_eq!(f2, fin);
            assert_eq!(tape, want);
        }
    }

    #[test]
    fn convergence_after_unescaped_quote() {
        let f = frag(b"xx\"yy", 0);
        assert!(f.distinct_finishing_states() <= 3);
        // Quote parity keeps states 0 and 1 swapped forever, but the
        // escape state 2 folds into the in-string trajectory after one
        // byte: three speculative runs converge to two.
        let g = frag(b"\"a\" , \"b\"", 0);
        assert_eq!(g.distinct_finishing_states(), 2);
    }

    fn arb_input() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(prop::sample::select(b"ab,\"\\ :x".to_vec()), 0..120)
    }

    proptest! {
        #[test]
        fn split_invariance(input in arb_input(), cut in 0usize..120) {
            let cut = cut.min(input.len());
            let (l, r) = input.split_at(cut);
            let merged = frag(l, 0).merge(frag(r, cut as u64));
            let whole = frag(&input, 0);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn any_block_count_matches_sequential(input in arb_input(), nblocks in 1usize..8) {
            let chunk = input.len().div_ceil(nblocks).max(1);
            let frags: Vec<_> = input
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| frag(c, (i * chunk) as u64))
                .collect();
            let merged = crate::merge::merge_tree(frags);
            if merged.is_identity() {
                prop_assert_eq!(count_commas_seq(&input), 0);
            } else {
                let (_, tape) = merged.resolve(0).unwrap();
                prop_assert_eq!(tape.len() as u64, count_commas_seq(&input));
            }
        }

        #[test]
        fn merge_is_associative(a in arb_input(), b in arb_input(), c in arb_input()) {
            let fa = frag(&a, 0);
            let fb = frag(&b, a.len() as u64);
            let fc = frag(&c, (a.len() + b.len()) as u64);
            let left = fa.clone().merge(fb.clone()).merge(fc.clone());
            let right = fa.merge(fb.merge(fc));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn bulk_scan_equals_bytewise_on_random_input(input in arb_input(), start in 0u8..3) {
            let dfa = string_lexer();
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            let ff = dfa.run(start, &input, 0, |a, p| fast.push((a, p)));
            let fs = dfa.run_bytewise(start, &input, 0, |a, p| slow.push((a, p)));
            prop_assert_eq!(ff, fs);
            prop_assert_eq!(fast, slow);
        }
    }
}
