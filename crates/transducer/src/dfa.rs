//! Table-driven byte-level deterministic finite transducers and their
//! speculative fragments.
//!
//! §3.3: "Lexing is handled by finite transducers optimised for small
//! transition tables. As a transition must be performed after each
//! byte, precomputation is used for all the transition tables." A
//! [`ByteDfa`] stores one flattened `state × byte` table whose entries
//! pack the next state and the emitted action into a single `u16`
//! ([`ByteDfa::step`]); the associative execution runs a block from
//! every possible starting state ([`DfaFragment::run_block`]) and
//! merges per-start tapes with relation composition.
//!
//! Three scan optimisations make the hot path memory-bound rather than
//! dispatch-bound (the skip-to-structural-byte technique of
//! simdjson/Mison-style raw scanners):
//!
//! * **per-state skip classes** — [`DfaBuilder::build`] computes, for
//!   every state, the 256-bit set of *interesting* bytes (anything
//!   that leaves the state or emits an action). States with at most
//!   eight interesting bytes get a multi-needle lane scanner (AVX2 /
//!   SSE2 / SWAR, runtime-dispatched via [`crate::simd::kernel`]) that
//!   tests a full lane of input per iteration; sparse states fall back
//!   to a bitmap probe, and dense states to the plain table walk.
//!   Skipped bytes are provably self-loops with no action, so output
//!   is bit-identical across kernels.
//! * **prefix/shared tapes** — the fragment exploits *convergence*
//!   (§3.1): speculation proceeds in lockstep only until every
//!   speculative run reaches the same state, after which a single
//!   shared run covers the rest of the block. The shared tape is
//!   stored **once** per fragment instead of being cloned into every
//!   per-start entry (the paper's output-matrix tape sharing), and
//!   merges move tapes instead of cloning them.
//! * **speculation pruning + vectorised lockstep** — duplicate start
//!   states and speculative runs that collapse onto the same
//!   trajectory before emitting anything (e.g. a JSON escape state
//!   folding into the in-string state after one byte) are deduplicated
//!   into a single run, and the lockstep phase skips bytes
//!   uninteresting to *every* live run with the same lane kernels as
//!   the shared phase whenever the union interesting set fits eight
//!   needles — so even speculation that never converges (JSON quote
//!   parity) scans at lane speed instead of probing bytewise.

use crate::merge::Mergeable;
use crate::simd::{self, HitMasker};

/// Action id meaning "emit nothing".
pub const NO_ACTION: u8 = 0;

/// How the bulk scanner skips a state's uninteresting bytes. The
/// `Few*` classes store the raw needle bytes (padded with duplicates);
/// broadcast vectors are built at scan entry for whichever kernel the
/// runtime dispatch selects.
#[derive(Debug, Clone)]
enum SkipClass {
    /// No interesting bytes: the whole rest of the block is skipped.
    All,
    /// At most two interesting bytes — the string-interior case.
    Few2([u8; 2]),
    /// Three or four interesting bytes.
    Few4([u8; 4]),
    /// Five to eight interesting bytes.
    Few8([u8; 8]),
    /// Arbitrary sparse set: per-byte 256-bit bitmap probe.
    Bitmap,
    /// Mostly interesting bytes: skipping would not pay; walk the
    /// table directly.
    Dense,
}

/// A deterministic byte-level finite transducer with a precomputed
/// flattened transition+action table.
#[derive(Debug, Clone)]
pub struct ByteDfa {
    n_states: usize,
    start: u8,
    /// `table[state * 256 + byte]` = `next_state | action << 8`.
    table: Vec<u16>,
    /// Per-state interesting-byte sets (bit set ⇒ the byte either
    /// leaves the state or emits an action).
    interesting: Vec<[u64; 4]>,
    /// Per-state scanner selection derived from `interesting`.
    skip: Vec<SkipClass>,
    /// The fused-scan plan, when the union of every needle-class
    /// state's interesting set itself fits eight needles.
    fused: Option<FusedScan>,
}

/// Plan for the fused scan: one fixed needle set covering every
/// needle-class (and all-skip) state, so a run crossing those states
/// (e.g. JSON in/out-of-string flips) stays inside a single lane loop
/// with a single masker. Hits are filtered per-state with the bitmap —
/// a union hit that is boring for the *current* state is a provable
/// silent self-loop, so skipping it is exact.
#[derive(Debug, Clone)]
struct FusedScan {
    needles: [u8; 8],
    n: usize,
    /// Per-state: true when the fused loop may run this state (its
    /// interesting set is contained in the union needle set).
    covered: Vec<bool>,
}

#[inline]
fn bit(map: &[u64; 4], b: u8) -> bool {
    map[(b >> 6) as usize] >> (b & 63) & 1 == 1
}

impl ByteDfa {
    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n_states
    }

    /// The designated starting state.
    #[inline]
    pub fn start_state(&self) -> u8 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u8, byte: u8) -> (u8, u8) {
        let e = self.table[(state as usize) << 8 | byte as usize];
        (e as u8, (e >> 8) as u8)
    }

    /// [`Self::step`] without the bounds check, for the hot scan
    /// loops. Sound because [`DfaBuilder`] validates every transition
    /// target, so reachable states always index inside the table.
    #[inline(always)]
    fn step_fast(&self, state: u8, byte: u8) -> (u8, u8) {
        let idx = (state as usize) << 8 | byte as usize;
        debug_assert!(idx < self.table.len());
        // SAFETY: states are validated `< n_states` at build time and
        // the table has `n_states * 256` entries.
        let e = unsafe { *self.table.get_unchecked(idx) };
        (e as u8, (e >> 8) as u8)
    }

    /// The interesting-byte set of `state` (bytes that leave the state
    /// or emit an action). Skipping a byte outside this set cannot
    /// change the run's outcome.
    #[inline]
    pub fn interesting_set(&self, state: u8) -> &[u64; 4] {
        &self.interesting[state as usize]
    }

    /// Runs sequentially from `state`, invoking `emit(action, position)`
    /// for every non-zero action. Returns the final state.
    ///
    /// The scan is a lane at a time: for needle-class states the hit
    /// mask of a whole input lane (8/16/32 bytes depending on the
    /// dispatched kernel) is computed once and its set bits are
    /// consumed in place while the state is stable (self-transitions
    /// on structural bytes, e.g. commas and brackets outside strings,
    /// stay inside the lane loop), so neither skipped runs nor
    /// hit-dense runs rescan input.
    pub fn run<F: FnMut(u8, u64)>(
        &self,
        mut state: u8,
        bytes: &[u8],
        base: u64,
        mut emit: F,
    ) -> u8 {
        let len = bytes.len();
        let mut pos = 0usize;
        'class: while pos < len {
            // Fused fast path: while the state is covered by the union
            // needle set, one fixed masker survives state flips (e.g.
            // JSON quote transitions) — no per-flip re-dispatch or
            // masker rebuild. Exits only into uncovered (dense/bitmap)
            // states or at end of input.
            if let Some(f) = &self.fused {
                if f.covered[state as usize] {
                    match self.run_fused(f, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => {
                            pos = p;
                            continue 'class;
                        }
                        None => return state,
                    }
                }
            }
            match &self.skip[state as usize] {
                // Self-loops with no action forever: nothing left to do.
                SkipClass::All => return state,
                SkipClass::Dense => {
                    while pos < len {
                        let (next, action) = self.step(state, bytes[pos]);
                        if action != NO_ACTION {
                            emit(action, base + pos as u64);
                        }
                        pos += 1;
                        if next != state {
                            state = next;
                            continue 'class;
                        }
                    }
                }
                SkipClass::Few2(nd) => {
                    match self.run_few(nd, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => pos = p,
                        None => pos = len,
                    }
                }
                SkipClass::Few4(nd) => {
                    match self.run_few(nd, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => pos = p,
                        None => pos = len,
                    }
                }
                SkipClass::Few8(nd) => {
                    match self.run_few(nd, &mut state, bytes, pos, base, &mut emit) {
                        Some(p) => pos = p,
                        None => pos = len,
                    }
                }
                SkipClass::Bitmap => {
                    let map = &self.interesting[state as usize];
                    while pos < len {
                        let b = bytes[pos];
                        if bit(map, b) {
                            let (next, action) = self.step(state, b);
                            if action != NO_ACTION {
                                emit(action, base + pos as u64);
                            }
                            pos += 1;
                            if next != state {
                                state = next;
                                continue 'class;
                            }
                        } else {
                            pos += 1;
                        }
                    }
                }
            }
        }
        state
    }

    /// Kernel dispatch for one needle-class state: AVX2 when detected,
    /// SSE2 on x86_64 otherwise, portable SWAR elsewhere (or when
    /// `ATGIS_NO_SIMD` forces the fallback).
    #[inline]
    fn run_few<const N: usize, F: FnMut(u8, u64)>(
        &self,
        needles: &[u8; N],
        state: &mut u8,
        bytes: &[u8],
        pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        match simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch guarantees AVX2 was detected.
            simd::Kernel::Avx2 => unsafe {
                self.run_few_avx2(needles, state, bytes, pos, base, emit)
            },
            #[cfg(target_arch = "x86_64")]
            simd::Kernel::Sse2 => self.run_few_masked(
                simd::x86::Sse2Masker::new(needles),
                state,
                bytes,
                pos,
                base,
                emit,
            ),
            _ => self.run_few_masked(
                simd::SwarMasker::new(needles),
                state,
                bytes,
                pos,
                base,
                emit,
            ),
        }
    }

    /// AVX2 instantiation of [`Self::run_few_masked`]: the
    /// `#[target_feature]` wrapper lets the `#[inline(always)]`
    /// generic body (and the masker's intrinsics) compile with AVX2
    /// codegen.
    ///
    /// # Safety
    /// The CPU must support AVX2 (guaranteed by [`simd::kernel`]).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_few_avx2<const N: usize, F: FnMut(u8, u64)>(
        &self,
        needles: &[u8; N],
        state: &mut u8,
        bytes: &[u8],
        pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        // SAFETY: caller guarantees AVX2.
        let m = unsafe { simd::x86::Avx2Masker::new(needles) };
        self.run_few_masked(m, state, bytes, pos, base, emit)
    }

    /// Lane-mask scan for one needle-class state, generic over the
    /// scanning kernel: computes each lane's hit mask once and
    /// consumes its set bits in place while the state is stable.
    /// Returns `Some(resume_pos)` when the state changed (the caller
    /// re-dispatches on the new state's class) or `None` when the
    /// input is exhausted.
    #[inline(always)]
    fn run_few_masked<M: HitMasker, F: FnMut(u8, u64)>(
        &self,
        m: M,
        state: &mut u8,
        bytes: &[u8],
        mut pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        let len = bytes.len();
        while pos + M::WIDTH <= len {
            // SAFETY: the loop condition guarantees a full lane of
            // readable bytes; AVX2 maskers are only constructed inside
            // AVX2-dispatched contexts.
            let mut h = unsafe { m.mask(bytes.as_ptr().add(pos)) };
            while h != 0 {
                let i = pos + M::index_of(h);
                // SAFETY: `i < pos + M::WIDTH <= len`.
                let b = unsafe { *bytes.get_unchecked(i) };
                let (next, action) = self.step_fast(*state, b);
                if action != NO_ACTION {
                    emit(action, base + i as u64);
                }
                if next != *state {
                    *state = next;
                    return Some(i + 1);
                }
                h &= h - 1;
            }
            pos += M::WIDTH;
        }
        // Sub-lane tail.
        let map = &self.interesting[*state as usize];
        while pos < len {
            let b = bytes[pos];
            if bit(map, b) {
                let (next, action) = self.step(*state, b);
                if action != NO_ACTION {
                    emit(action, base + pos as u64);
                }
                pos += 1;
                if next != *state {
                    *state = next;
                    return Some(pos);
                }
            } else {
                pos += 1;
            }
        }
        None
    }

    /// Width dispatch for the fused scan: picks the narrowest needle
    /// count class that holds the union set (the needle array is
    /// duplicate-padded, so slicing it is always valid).
    #[inline]
    fn run_fused<F: FnMut(u8, u64)>(
        &self,
        f: &FusedScan,
        state: &mut u8,
        bytes: &[u8],
        pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        let nd = &f.needles;
        match f.n {
            1..=2 => {
                let nd2: [u8; 2] = [nd[0], nd[1]];
                self.run_fused_kernel(&nd2, &f.covered, state, bytes, pos, base, emit)
            }
            3..=4 => {
                let nd4: [u8; 4] = [nd[0], nd[1], nd[2], nd[3]];
                self.run_fused_kernel(&nd4, &f.covered, state, bytes, pos, base, emit)
            }
            _ => self.run_fused_kernel(nd, &f.covered, state, bytes, pos, base, emit),
        }
    }

    /// Kernel dispatch for the fused scan (mirrors [`Self::run_few`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn run_fused_kernel<const N: usize, F: FnMut(u8, u64)>(
        &self,
        needles: &[u8; N],
        covered: &[bool],
        state: &mut u8,
        bytes: &[u8],
        pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        match simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch guarantees AVX2 was detected.
            simd::Kernel::Avx2 => unsafe {
                self.run_fused_avx2(needles, covered, state, bytes, pos, base, emit)
            },
            #[cfg(target_arch = "x86_64")]
            simd::Kernel::Sse2 => self.run_fused_masked(
                simd::x86::Sse2Masker::new(needles),
                covered,
                state,
                bytes,
                pos,
                base,
                emit,
            ),
            _ => self.run_fused_masked(
                simd::SwarMasker::new(needles),
                covered,
                state,
                bytes,
                pos,
                base,
                emit,
            ),
        }
    }

    /// AVX2 instantiation of [`Self::run_fused_masked`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (guaranteed by [`simd::kernel`]).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_fused_avx2<const N: usize, F: FnMut(u8, u64)>(
        &self,
        needles: &[u8; N],
        covered: &[bool],
        state: &mut u8,
        bytes: &[u8],
        pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        // SAFETY: caller guarantees AVX2.
        let m = unsafe { simd::x86::Avx2Masker::new(needles) };
        self.run_fused_masked(m, covered, state, bytes, pos, base, emit)
    }

    /// The fused lane loop: scans with the *union* needle masker and
    /// filters each hit against the current state's interesting bitmap
    /// (a union hit outside that bitmap is a silent self-loop for the
    /// current state, so skipping it is exact). State flips among
    /// covered states swap the bitmap and carry on inside the same
    /// loop; only a transition into an uncovered (dense/bitmap-class)
    /// state returns, with `Some(resume_pos)`. `None` means the input
    /// is exhausted.
    ///
    /// Soundness of continuing mid-lane after a flip: the hit mask
    /// holds *every* union byte in the lane, and the union contains
    /// the new covered state's whole interesting set, so no byte the
    /// new state cares about was dropped from `h`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn run_fused_masked<M: HitMasker, F: FnMut(u8, u64)>(
        &self,
        m: M,
        covered: &[bool],
        state: &mut u8,
        bytes: &[u8],
        mut pos: usize,
        base: u64,
        emit: &mut F,
    ) -> Option<usize> {
        let len = bytes.len();
        let mut map = &self.interesting[*state as usize];
        while pos + M::WIDTH <= len {
            // SAFETY: the loop condition guarantees a full lane of
            // readable bytes; AVX2 maskers only exist in AVX2 contexts.
            let mut h = unsafe { m.mask(bytes.as_ptr().add(pos)) };
            while h != 0 {
                let i = pos + M::index_of(h);
                h &= h - 1;
                // SAFETY: `i < pos + M::WIDTH <= len`.
                let b = unsafe { *bytes.get_unchecked(i) };
                if !bit(map, b) {
                    continue;
                }
                let (next, action) = self.step_fast(*state, b);
                if action != NO_ACTION {
                    emit(action, base + i as u64);
                }
                if next != *state {
                    *state = next;
                    if !covered[next as usize] {
                        return Some(i + 1);
                    }
                    map = &self.interesting[next as usize];
                }
            }
            pos += M::WIDTH;
        }
        // Sub-lane tail.
        while pos < len {
            let b = bytes[pos];
            if bit(map, b) {
                let (next, action) = self.step_fast(*state, b);
                if action != NO_ACTION {
                    emit(action, base + pos as u64);
                }
                pos += 1;
                if next != *state {
                    *state = next;
                    if !covered[next as usize] {
                        return Some(pos);
                    }
                    map = &self.interesting[next as usize];
                }
            } else {
                pos += 1;
            }
        }
        None
    }

    /// The pre-optimisation byte-at-a-time loop, kept as the reference
    /// implementation for differential tests and scan benchmarks.
    pub fn run_bytewise<F: FnMut(u8, u64)>(
        &self,
        mut state: u8,
        bytes: &[u8],
        base: u64,
        mut emit: F,
    ) -> u8 {
        for (i, &b) in bytes.iter().enumerate() {
            let (next, action) = self.step(state, b);
            if action != NO_ACTION {
                emit(action, base + i as u64);
            }
            state = next;
        }
        state
    }
}

/// Builder for [`ByteDfa`]. States are added explicitly; transitions
/// default to self-loops with no action until overridden.
#[derive(Debug, Clone, Default)]
pub struct DfaBuilder {
    trans: Vec<[u8; 256]>,
    actions: Vec<[u8; 256]>,
    start: u8,
}

impl DfaBuilder {
    /// Creates a builder with `n` states (all self-looping), starting
    /// in state `start`.
    pub fn new(n: usize, start: u8) -> Self {
        assert!(n > 0 && n <= 255, "state count must be in 1..=255");
        assert!((start as usize) < n);
        let mut trans = Vec::with_capacity(n);
        for s in 0..n {
            trans.push([s as u8; 256]);
        }
        DfaBuilder {
            trans,
            actions: vec![[NO_ACTION; 256]; n],
            start,
        }
    }

    /// Sets the transition for every byte from `from` to `to`
    /// (a "default" edge; override specific bytes afterwards).
    pub fn default_transition(&mut self, from: u8, to: u8) -> &mut Self {
        assert!(
            (to as usize) < self.trans.len(),
            "transition target out of range"
        );
        self.trans[from as usize] = [to; 256];
        self
    }

    /// Sets the transition for one byte.
    pub fn transition(&mut self, from: u8, byte: u8, to: u8) -> &mut Self {
        assert!(
            (to as usize) < self.trans.len(),
            "transition target out of range"
        );
        self.trans[from as usize][byte as usize] = to;
        self
    }

    /// Sets transitions for every byte in `bytes`.
    pub fn transitions(&mut self, from: u8, bytes: &[u8], to: u8) -> &mut Self {
        assert!(
            (to as usize) < self.trans.len(),
            "transition target out of range"
        );
        for &b in bytes {
            self.trans[from as usize][b as usize] = to;
        }
        self
    }

    /// Attaches an action to one byte consumed in `from`.
    pub fn action(&mut self, from: u8, byte: u8, action: u8) -> &mut Self {
        self.actions[from as usize][byte as usize] = action;
        self
    }

    /// Attaches an action to every byte in `bytes` consumed in `from`.
    pub fn action_on(&mut self, from: u8, bytes: &[u8], action: u8) -> &mut Self {
        for &b in bytes {
            self.actions[from as usize][b as usize] = action;
        }
        self
    }

    /// Finalises the automaton: flattens the tables and computes the
    /// per-state interesting-byte sets and skip classes the bulk
    /// scanner uses.
    pub fn build(self) -> ByteDfa {
        let n = self.trans.len();
        let mut table = Vec::with_capacity(n * 256);
        let mut interesting = Vec::with_capacity(n);
        let mut skip = Vec::with_capacity(n);
        for s in 0..n {
            let mut map = [0u64; 4];
            let mut needles: Vec<u8> = Vec::new();
            for b in 0..256usize {
                let next = self.trans[s][b];
                let action = self.actions[s][b];
                table.push(next as u16 | (action as u16) << 8);
                if next != s as u8 || action != NO_ACTION {
                    map[b >> 6] |= 1u64 << (b & 63);
                    if needles.len() < 8 {
                        needles.push(b as u8);
                    }
                }
            }
            let count = map.iter().map(|w| w.count_ones()).sum::<u32>();
            skip.push(match count {
                0 => SkipClass::All,
                1..=2 => SkipClass::Few2(padded_needles(&needles)),
                3..=4 => SkipClass::Few4(padded_needles(&needles)),
                5..=8 => SkipClass::Few8(padded_needles(&needles)),
                // Past ~1/3 interesting bytes the probe loop stops
                // paying for itself; walk the table.
                9..=96 => SkipClass::Bitmap,
                _ => SkipClass::Dense,
            });
            interesting.push(map);
        }

        // Fused-scan plan: union the interesting sets of every state
        // the fused loop can run (needle-class and all-skip states).
        // If the union still fits eight needles, one fixed masker
        // covers state flips among those states — the JSON lexer's
        // OUT/STR pair unions to exactly the eight structural bytes.
        let covered: Vec<bool> = skip
            .iter()
            .map(|c| {
                matches!(
                    c,
                    SkipClass::All | SkipClass::Few2(_) | SkipClass::Few4(_) | SkipClass::Few8(_)
                )
            })
            .collect();
        let mut union = [0u64; 4];
        for (s, cov) in covered.iter().enumerate() {
            if *cov {
                for (acc, w) in union.iter_mut().zip(&interesting[s]) {
                    *acc |= w;
                }
            }
        }
        let fused = match needle_set(&union) {
            Some((needles, count)) if count >= 1 => Some(FusedScan {
                needles,
                n: count,
                covered,
            }),
            _ => None,
        };

        ByteDfa {
            n_states: n,
            start: self.start,
            table,
            interesting,
            skip,
            fused,
        }
    }
}

/// Copies `needles` into a fixed-size array, padding the remainder by
/// repeating the last needle (duplicate compares are wasted work but
/// never false hits). `needles` must be non-empty and at most `N`
/// long.
#[inline]
fn padded_needles<const N: usize>(needles: &[u8]) -> [u8; N] {
    debug_assert!(!needles.is_empty() && needles.len() <= N);
    let mut out = [needles[needles.len() - 1]; N];
    out[..needles.len()].copy_from_slice(needles);
    out
}

/// A speculative fragment of a byte DFA run over one block.
///
/// Per-start tapes are split into a *prefix* (the bytes scanned before
/// the speculative runs converged, one tape per start state) and a
/// single *shared* suffix tape covering everything after convergence —
/// §3.1's output-matrix tape sharing made explicit. The realised tape
/// of a start state is `prefix ⊗ shared`; [`DfaFragment::resolve`] and
/// [`DfaFragment::into_entries`] perform that composition on demand,
/// so building and merging fragments never clones the (typically
/// dominant) shared tape.
#[derive(Debug, Clone)]
pub struct DfaFragment<O> {
    /// `(start, finish, prefix tape)` triples, one per speculated
    /// start state.
    entries: Vec<(u8, u8, O)>,
    /// Tape of the converged suffix, shared by every entry (identity
    /// when the block never converged).
    shared: O,
    /// True when every entry finishes in the same state (the shared
    /// phase ran, or the block ended exactly at convergence).
    converged: bool,
}

/// One distinct speculative trajectory inside
/// [`DfaFragment::run_block`]. Several start states may alias the same
/// run: duplicates in `starts`, or runs that collapsed onto the same
/// state before emitting anything.
struct Run<O> {
    state: u8,
    tape: O,
    /// True once any action has been folded into `tape`; runs with
    /// equal states may only be deduplicated while both are still
    /// silent (their pasts are provably identical: empty).
    emitted: bool,
}

impl<O: Mergeable + Clone> DfaFragment<O> {
    /// Builds the fragment for `bytes` speculating from each state in
    /// `starts`. `build(tape, action, absolute_position, byte)` folds
    /// emitted actions into the per-start tape; `base` is the block's
    /// absolute offset in the input, so emitted positions are global.
    ///
    /// The speculative phase advances all *distinct* runs in lockstep
    /// — duplicate start states share a run from the first byte, and
    /// runs that land in the same state before emitting anything are
    /// folded as they collapse (the cheap lookahead pruning: a JSON
    /// escape start folds into the in-string start after one
    /// non-special byte). Bytes uninteresting to every live run are
    /// self-loops with no action for all of them, so the lockstep skip
    /// scans with the same lane kernels as the shared phase whenever
    /// the union interesting set fits eight needles, and falls back to
    /// the bitmap probe otherwise. Once all runs converge, a single
    /// bulk-scanned shared run covers the rest of the block and its
    /// tape is stored once.
    pub fn run_block<F>(dfa: &ByteDfa, starts: &[u8], bytes: &[u8], base: u64, mut build: F) -> Self
    where
        F: FnMut(&mut O, u8, u64, u8),
    {
        let len = bytes.len();
        // Distinct trajectories + alias map from `starts` indices.
        let mut runs: Vec<Run<O>> = Vec::new();
        let mut alias: Vec<usize> = Vec::with_capacity(starts.len());
        let mut seen: Vec<u8> = Vec::new();
        for &s in starts {
            if let Some(j) = seen.iter().position(|&x| x == s) {
                alias.push(j);
            } else {
                alias.push(runs.len());
                seen.push(s);
                runs.push(Run {
                    state: s,
                    tape: O::identity(),
                    emitted: false,
                });
            }
        }

        // Speculative phase: all distinct runs in lockstep until they
        // fold into one or all reach the same state.
        let mut pos = 0usize;
        while pos < len && !states_all_equal(&runs) {
            // Fused lockstep: while every live run sits in a state
            // covered by the DFA's union needle set, one fixed masker
            // survives state flips (quote parity flips OUT↔STR without
            // ever converging) — no per-flip masker rebuild.
            if let Some(f) = &dfa.fused {
                if runs.iter().all(|r| f.covered[r.state as usize]) {
                    pos =
                        lockstep_fused(dfa, f, &mut runs, &mut alias, bytes, pos, base, &mut build);
                    continue;
                }
            }
            let live = combined_interesting(dfa, &runs);
            match needle_set(&live) {
                Some((_, 0)) => {
                    // No live run has interesting bytes left: the rest
                    // of the block is a silent self-loop for everyone.
                    pos = len;
                }
                Some((nd, n)) => {
                    pos = lockstep_dispatch(
                        dfa, &live, &nd, n, &mut runs, &mut alias, bytes, pos, base, &mut build,
                    );
                }
                None => {
                    // Dense union (e.g. a default-transition escape
                    // state is live): step this byte for every run,
                    // then re-evaluate — folding usually retires the
                    // dense state within a byte or two.
                    let b = bytes[pos];
                    step_all_at(dfa, &mut runs, &mut alias, b, base + pos as u64, &mut build);
                    pos += 1;
                }
            }
        }

        // Shared phase: one bulk-scanned run, tape stored once.
        let mut shared = O::identity();
        let converged = states_all_equal(&runs);
        if converged && pos < len {
            let fin = dfa.run(
                runs[0].state,
                &bytes[pos..],
                base + pos as u64,
                |action, p| {
                    build(&mut shared, action, p, bytes[(p - base) as usize]);
                },
            );
            for run in runs.iter_mut() {
                run.state = fin;
            }
        }

        // Realise entries through the alias map; each run's tape moves
        // into its last aliased entry and is cloned for the others.
        let mut refs = vec![0usize; runs.len()];
        for &j in &alias {
            refs[j] += 1;
        }
        let mut slots: Vec<(u8, Option<O>)> =
            runs.into_iter().map(|r| (r.state, Some(r.tape))).collect();
        let entries = starts
            .iter()
            .zip(&alias)
            .map(|(&s, &j)| {
                refs[j] -= 1;
                let tape = if refs[j] == 0 {
                    slots[j].1.take().expect("tape moved once")
                } else {
                    slots[j]
                        .1
                        .as_ref()
                        .expect("tape live until last ref")
                        .clone()
                };
                (s, slots[j].0, tape)
            })
            .collect();

        DfaFragment {
            entries,
            shared,
            converged,
        }
    }

    /// Builds a fragment from fully-realised `(start, finish, tape)`
    /// entries (no shared suffix) — the representation produced by
    /// independent per-start runs, e.g. the reference byte-loop lexer.
    pub fn from_entries(entries: Vec<(u8, u8, O)>) -> Self {
        let converged = !entries.is_empty() && entries.windows(2).all(|w| w[0].1 == w[1].1);
        DfaFragment {
            entries,
            shared: O::identity(),
            converged,
        }
    }

    /// True for the merge identity (no speculated entries).
    pub fn is_identity(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(start, finish)` pairs of the speculation relation.
    pub fn relation(&self) -> impl Iterator<Item = (u8, u8)> + '_ {
        self.entries.iter().map(|(s, f, _)| (*s, *f))
    }

    /// Realises the per-start tapes: `prefix ⊗ shared` for every
    /// entry. The shared tape is moved into the last entry and cloned
    /// for the others — the only place a shared tape is ever copied.
    pub fn into_entries(self) -> Vec<(u8, u8, O)> {
        let mut out = Vec::with_capacity(self.entries.len());
        let mut shared = Some(self.shared);
        let mut it = self.entries.into_iter().peekable();
        while let Some((s, f, prefix)) = it.next() {
            let suffix = if it.peek().is_some() {
                shared.as_ref().expect("shared live until last").clone()
            } else {
                shared.take().expect("shared live until last")
            };
            out.push((s, f, prefix.merge(suffix)));
        }
        out
    }

    /// Relation composition: for every entry of `self`, chase its
    /// finishing state through `other`. Returns `None` when `other`
    /// did not speculate from a state `self` finishes in (a speculation
    /// set mismatch — callers either speculate on all states or prove
    /// the set closed under transitions).
    ///
    /// Consumes both fragments: tapes are moved, not cloned, except
    /// when several entries of `self` finish in the same mid state and
    /// must share one tail (only the small pre-convergence prefixes
    /// are ever duplicated).
    pub fn try_merge_with(self, other: DfaFragment<O>) -> Option<DfaFragment<O>> {
        if self.converged {
            // All mids are equal: compose the shared chain once —
            // result shared = self.shared ⊗ other(mid) — with zero
            // clones of either shared tape.
            let mid = self.entries.first().map(|e| e.1)?;
            let (fin, tail) = other.realize_for(mid)?;
            let entries = self
                .entries
                .into_iter()
                .map(|(s, _, prefix)| (s, fin, prefix))
                .collect();
            return Some(DfaFragment {
                entries,
                shared: self.shared.merge(tail),
                converged: true,
            });
        }

        // Unconverged left: self.shared is identity and mids may
        // differ. Each entry's prefix absorbs other's matching prefix
        // tape; other's shared tape (identity unless other converged,
        // in which case it is common to every chased entry) hoists
        // into the result's shared slot unchanged — so the dominant
        // tape is moved exactly once, never cloned.
        let other_converged = other.converged;
        let mut slots: Vec<(u8, u8, Option<O>)> = other
            .entries
            .into_iter()
            .map(|(s, f, p)| (s, f, Some(p)))
            .collect();
        // Reference counts decide move-vs-clone: the last entry
        // chasing a given mid state moves the tail prefix out.
        let mut refs = vec![0usize; slots.len()];
        for (_, mid, _) in &self.entries {
            let j = slots.iter().position(|(st, _, _)| st == mid)?;
            refs[j] += 1;
        }
        let mut entries = Vec::with_capacity(self.entries.len());
        for (s, mid, prefix) in self.entries {
            let j = slots
                .iter()
                .position(|(st, _, _)| *st == mid)
                .expect("checked above");
            refs[j] -= 1;
            let tail = if refs[j] == 0 {
                slots[j].2.take().expect("taken once")
            } else {
                slots[j].2.as_ref().expect("live until last ref").clone()
            };
            entries.push((s, slots[j].1, prefix.merge(tail)));
        }
        let converged =
            other_converged || entries.windows(2).all(|w: &[(u8, u8, O)]| w[0].1 == w[1].1);
        Some(DfaFragment {
            entries,
            shared: other.shared,
            converged,
        })
    }

    /// Realises the tape for the entry starting at `start`, consuming
    /// the fragment: `prefix ⊗ shared` with both moved, no clones.
    fn realize_for(self, start: u8) -> Option<(u8, O)> {
        let shared = self.shared;
        self.entries
            .into_iter()
            .find(|(s, _, _)| *s == start)
            .map(|(_, f, prefix)| (f, prefix.merge(shared)))
    }

    /// Resolves against the true starting state, realising its tape.
    pub fn resolve(&self, start: u8) -> Option<(u8, O)> {
        self.entries
            .iter()
            .find(|(s, _, _)| *s == start)
            .map(|(_, f, prefix)| (*f, prefix.clone().merge(self.shared.clone())))
    }

    /// Distinct finishing states (convergence measure).
    pub fn distinct_finishing_states(&self) -> usize {
        let mut fins: Vec<u8> = self.entries.iter().map(|e| e.1).collect();
        fins.sort_unstable();
        fins.dedup();
        fins.len()
    }
}

/// True when every live run is in the same state (vacuously true for a
/// single run).
#[inline]
fn states_all_equal<O>(runs: &[Run<O>]) -> bool {
    runs.windows(2).all(|w| w[0].state == w[1].state)
}

/// Steps every live run on byte `b` (emitting into its tape), folds
/// runs that collapsed onto the same still-silent trajectory, and
/// reports whether any run changed state — the caller's signal that
/// the union interesting set (and its needle masker) may be stale.
#[inline(always)]
fn step_all_at<O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    b: u8,
    at: u64,
    build: &mut F,
) -> bool {
    let mut changed = false;
    for run in runs.iter_mut() {
        let (next, action) = dfa.step_fast(run.state, b);
        if action != NO_ACTION {
            build(&mut run.tape, action, at, b);
            run.emitted = true;
        }
        if next != run.state {
            run.state = next;
            changed = true;
        }
    }
    if changed {
        fold_runs(runs, alias);
    }
    changed
}

/// Deduplicates runs that are in the same state with both tapes still
/// empty: their pasts (nothing emitted) and futures (same state in a
/// deterministic machine) are identical, so one run serves both start
/// states. Alias entries are remapped to the surviving run.
fn fold_runs<O>(runs: &mut Vec<Run<O>>, alias: &mut [usize]) {
    let mut i = 0;
    while i < runs.len() {
        let mut k = i + 1;
        while k < runs.len() {
            if runs[i].state == runs[k].state && !runs[i].emitted && !runs[k].emitted {
                runs.remove(k);
                for a in alias.iter_mut() {
                    if *a == k {
                        *a = i;
                    } else if *a > k {
                        *a -= 1;
                    }
                }
            } else {
                k += 1;
            }
        }
        i += 1;
    }
}

/// Extracts the needle bytes of `map` when they fit a lane scanner:
/// `Some((needles, count))` for at most 8 set bits (count may be 0),
/// `None` for denser sets.
fn needle_set(map: &[u64; 4]) -> Option<([u8; 8], usize)> {
    let count = map.iter().map(|w| w.count_ones()).sum::<u32>() as usize;
    if count > 8 {
        return None;
    }
    let mut nd = [0u8; 8];
    let mut n = 0;
    for (wi, &word) in map.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            nd[n] = (wi as u8) << 6 | w.trailing_zeros() as u8;
            n += 1;
            w &= w - 1;
        }
    }
    // Pad with a duplicate so unused compare slots never false-hit.
    let pad = nd[n.saturating_sub(1)];
    for slot in nd.iter_mut().skip(n.max(1)) {
        *slot = pad;
    }
    Some((nd, n))
}

/// Width dispatch for the fused lockstep (mirrors
/// [`ByteDfa::run_fused`]): scans with the DFA-wide union needle set,
/// which outlives state flips among covered states.
#[allow(clippy::too_many_arguments)]
fn lockstep_fused<O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    f: &FusedScan,
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    let nd = &f.needles;
    match f.n {
        1..=2 => {
            let nd2: [u8; 2] = [nd[0], nd[1]];
            lockstep_fused_kernel(dfa, &nd2, &f.covered, runs, alias, bytes, pos, base, build)
        }
        3..=4 => {
            let nd4: [u8; 4] = [nd[0], nd[1], nd[2], nd[3]];
            lockstep_fused_kernel(dfa, &nd4, &f.covered, runs, alias, bytes, pos, base, build)
        }
        _ => lockstep_fused_kernel(dfa, nd, &f.covered, runs, alias, bytes, pos, base, build),
    }
}

/// Kernel dispatch for the fused lockstep.
#[allow(clippy::too_many_arguments)]
fn lockstep_fused_kernel<const N: usize, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    nd: &[u8; N],
    covered: &[bool],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    match simd::kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch guarantees AVX2 was detected.
        simd::Kernel::Avx2 => unsafe {
            lockstep_fused_avx2(dfa, nd, covered, runs, alias, bytes, pos, base, build)
        },
        #[cfg(target_arch = "x86_64")]
        simd::Kernel::Sse2 => lockstep_fused_masked(
            dfa,
            simd::x86::Sse2Masker::new(nd),
            covered,
            runs,
            alias,
            bytes,
            pos,
            base,
            build,
        ),
        _ => lockstep_fused_masked(
            dfa,
            simd::SwarMasker::new(nd),
            covered,
            runs,
            alias,
            bytes,
            pos,
            base,
            build,
        ),
    }
}

/// AVX2 instantiation of [`lockstep_fused_masked`].
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn lockstep_fused_avx2<
    const N: usize,
    O: Mergeable + Clone,
    F: FnMut(&mut O, u8, u64, u8),
>(
    dfa: &ByteDfa,
    nd: &[u8; N],
    covered: &[bool],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    // SAFETY: caller guarantees AVX2.
    let m = unsafe { simd::x86::Avx2Masker::new(nd) };
    lockstep_fused_masked(dfa, m, covered, runs, alias, bytes, pos, base, build)
}

/// Fused lockstep lane loop: scans with the DFA-wide union masker and
/// filters hits against the live runs' combined interesting set (a hit
/// outside it is a silent self-loop for every live run). State changes
/// recompute the combined set and carry on inside the same loop; the
/// scan only returns when speculation converges, a run enters an
/// uncovered state, or the input is exhausted.
///
/// Mid-lane continuation is sound for the same reason as
/// [`ByteDfa::run_fused_masked`]: the hit mask holds every union byte
/// of the lane, and the union contains every covered state's whole
/// interesting set.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lockstep_fused_masked<M: HitMasker, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    m: M,
    covered: &[bool],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    mut pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    let len = bytes.len();
    // Steady state: exactly two runs that have both emitted can never
    // fold, so all run bookkeeping drops away (the JSON quote-parity
    // pair lives here for whole blocks).
    if let [r0, r1] = runs.as_mut_slice() {
        if r0.emitted && r1.emitted {
            return lockstep_fused2_masked(dfa, m, covered, r0, r1, bytes, pos, base, build);
        }
    }
    let mut live = combined_interesting(dfa, runs);
    while pos + M::WIDTH <= len {
        // SAFETY: the loop condition guarantees a full lane of
        // readable bytes; AVX2 maskers only exist in AVX2 contexts.
        let mut h = unsafe { m.mask(bytes.as_ptr().add(pos)) };
        while h != 0 {
            let i = pos + M::index_of(h);
            h &= h - 1;
            // SAFETY: `i < pos + M::WIDTH <= len`.
            let b = unsafe { *bytes.get_unchecked(i) };
            if !bit(&live, b) {
                continue;
            }
            if step_all_at(dfa, runs, alias, b, base + i as u64, build) {
                if states_all_equal(runs) || runs.iter().any(|r| !covered[r.state as usize]) {
                    return i + 1;
                }
                if let [r0, r1] = runs.as_mut_slice() {
                    if r0.emitted && r1.emitted {
                        return lockstep_fused2_masked(
                            dfa,
                            m,
                            covered,
                            r0,
                            r1,
                            bytes,
                            i + 1,
                            base,
                            build,
                        );
                    }
                }
                live = combined_interesting(dfa, runs);
            }
        }
        pos += M::WIDTH;
    }
    // Sub-lane tail: bitmap probe over the combined live set.
    while pos < len {
        let b = bytes[pos];
        if bit(&live, b) {
            let changed = step_all_at(dfa, runs, alias, b, base + pos as u64, build);
            pos += 1;
            if changed {
                if states_all_equal(runs) || runs.iter().any(|r| !covered[r.state as usize]) {
                    return pos;
                }
                live = combined_interesting(dfa, runs);
            }
        } else {
            pos += 1;
        }
    }
    pos
}

/// The two-run steady-state lockstep: both runs have emitted (no fold
/// is possible any more), so their states live in registers and each
/// hit is just two table steps — no `Vec` walk, no fold or alias
/// bookkeeping. Returns on convergence (`s0 == s1`), on a transition
/// into an uncovered state, or at end of input.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lockstep_fused2_masked<M: HitMasker, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    m: M,
    covered: &[bool],
    r0: &mut Run<O>,
    r1: &mut Run<O>,
    bytes: &[u8],
    mut pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    let len = bytes.len();
    let mut s0 = r0.state;
    let mut s1 = r1.state;
    let mut live = union2(dfa, s0, s1);
    macro_rules! hit {
        ($b:expr, $i:expr, $resume:expr) => {{
            let (n0, a0) = dfa.step_fast(s0, $b);
            let (n1, a1) = dfa.step_fast(s1, $b);
            if a0 != NO_ACTION {
                build(&mut r0.tape, a0, base + $i as u64, $b);
            }
            if a1 != NO_ACTION {
                build(&mut r1.tape, a1, base + $i as u64, $b);
            }
            if n0 != s0 || n1 != s1 {
                s0 = n0;
                s1 = n1;
                if s0 == s1 || !covered[s0 as usize] || !covered[s1 as usize] {
                    r0.state = s0;
                    r1.state = s1;
                    return $resume;
                }
                live = union2(dfa, s0, s1);
            }
        }};
    }
    while pos + M::WIDTH <= len {
        // SAFETY: the loop condition guarantees a full lane of
        // readable bytes; AVX2 maskers only exist in AVX2 contexts.
        let mut h = unsafe { m.mask(bytes.as_ptr().add(pos)) };
        while h != 0 {
            let i = pos + M::index_of(h);
            h &= h - 1;
            // SAFETY: `i < pos + M::WIDTH <= len`.
            let b = unsafe { *bytes.get_unchecked(i) };
            if !bit(&live, b) {
                continue;
            }
            hit!(b, i, i + 1);
        }
        pos += M::WIDTH;
    }
    while pos < len {
        let b = bytes[pos];
        if bit(&live, b) {
            hit!(b, pos, pos + 1);
        }
        pos += 1;
    }
    r0.state = s0;
    r1.state = s1;
    pos
}

/// OR of two states' interesting sets.
#[inline(always)]
fn union2(dfa: &ByteDfa, s0: u8, s1: u8) -> [u64; 4] {
    let a = &dfa.interesting[s0 as usize];
    let b = &dfa.interesting[s1 as usize];
    [a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]]
}

/// Picks the needle width and kernel for one lockstep span and runs it.
/// Returns the resume position: either the input is exhausted, or a
/// state changed / runs folded and the caller must re-derive the union
/// set.
#[allow(clippy::too_many_arguments)]
fn lockstep_dispatch<O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    live: &[u64; 4],
    nd: &[u8; 8],
    n: usize,
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    match n {
        1..=2 => {
            let nd2: [u8; 2] = [nd[0], nd[1.min(n - 1)]];
            lockstep_kernel(dfa, live, &nd2, runs, alias, bytes, pos, base, build)
        }
        3..=4 => {
            let nd4: [u8; 4] = [nd[0], nd[1], nd[2], nd[3.min(n - 1)]];
            lockstep_kernel(dfa, live, &nd4, runs, alias, bytes, pos, base, build)
        }
        _ => lockstep_kernel(dfa, live, nd, runs, alias, bytes, pos, base, build),
    }
}

/// Kernel dispatch for one lockstep span (mirrors
/// [`ByteDfa::run_few`]).
#[allow(clippy::too_many_arguments)]
fn lockstep_kernel<const N: usize, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    live: &[u64; 4],
    nd: &[u8; N],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    match simd::kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch guarantees AVX2 was detected.
        simd::Kernel::Avx2 => unsafe {
            lockstep_avx2(dfa, live, nd, runs, alias, bytes, pos, base, build)
        },
        #[cfg(target_arch = "x86_64")]
        simd::Kernel::Sse2 => lockstep_masked(
            dfa,
            simd::x86::Sse2Masker::new(nd),
            live,
            runs,
            alias,
            bytes,
            pos,
            base,
            build,
        ),
        _ => lockstep_masked(
            dfa,
            simd::SwarMasker::new(nd),
            live,
            runs,
            alias,
            bytes,
            pos,
            base,
            build,
        ),
    }
}

/// AVX2 instantiation of [`lockstep_masked`].
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn lockstep_avx2<const N: usize, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    live: &[u64; 4],
    nd: &[u8; N],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    // SAFETY: caller guarantees AVX2.
    let m = unsafe { simd::x86::Avx2Masker::new(nd) };
    lockstep_masked(dfa, m, live, runs, alias, bytes, pos, base, build)
}

/// One vectorised lockstep span: scans lanes for bytes in the union
/// interesting set, stepping *every* live run at each hit (bytes
/// outside the set are silent self-loops for all of them). Returns as
/// soon as any run changes state or folds — the union set may have
/// changed, so the caller rebuilds the masker — or when the input is
/// exhausted.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lockstep_masked<M: HitMasker, O: Mergeable + Clone, F: FnMut(&mut O, u8, u64, u8)>(
    dfa: &ByteDfa,
    m: M,
    live: &[u64; 4],
    runs: &mut Vec<Run<O>>,
    alias: &mut [usize],
    bytes: &[u8],
    mut pos: usize,
    base: u64,
    build: &mut F,
) -> usize {
    let len = bytes.len();
    while pos + M::WIDTH <= len {
        // SAFETY: the loop condition guarantees a full lane of
        // readable bytes; AVX2 maskers only exist in AVX2 contexts.
        let mut h = unsafe { m.mask(bytes.as_ptr().add(pos)) };
        while h != 0 {
            let i = pos + M::index_of(h);
            if step_all_at(dfa, runs, alias, bytes[i], base + i as u64, build) {
                return i + 1;
            }
            h &= h - 1;
        }
        pos += M::WIDTH;
    }
    // Sub-lane tail: bitmap probe over the union set.
    while pos < len {
        let b = bytes[pos];
        if bit(live, b) {
            let changed = step_all_at(dfa, runs, alias, b, base + pos as u64, build);
            pos += 1;
            if changed {
                return pos;
            }
        } else {
            pos += 1;
        }
    }
    pos
}

/// OR of the interesting sets of the live runs: a byte may be skipped
/// in lockstep only when it is uninteresting to *every* live run, i.e.
/// outside the union of their interesting sets.
#[inline]
fn combined_interesting<O>(dfa: &ByteDfa, runs: &[Run<O>]) -> [u64; 4] {
    let mut map = [0u64; 4];
    for run in runs {
        let m = dfa.interesting_set(run.state);
        for (acc, w) in map.iter_mut().zip(m) {
            *acc |= w;
        }
    }
    map
}

impl<O: Mergeable + Clone + PartialEq> PartialEq for DfaFragment<O> {
    /// Logical equality over *realised* tapes: fragments that split
    /// prefix/shared differently but resolve identically are equal.
    fn eq(&self, other: &Self) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries.iter().zip(&other.entries).all(|(a, b)| {
            a.0 == b.0
                && a.1 == b.1
                && a.2.clone().merge(self.shared.clone()) == b.2.clone().merge(other.shared.clone())
        })
    }
}

impl<O: Mergeable + Clone> Mergeable for DfaFragment<O> {
    fn identity() -> Self {
        DfaFragment {
            entries: Vec::new(),
            shared: O::identity(),
            converged: false,
        }
    }

    fn merge(self, other: Self) -> Self {
        if self.entries.is_empty() {
            return other;
        }
        if other.entries.is_empty() {
            return self;
        }
        self.try_merge_with(other)
            .expect("DFA fragment merge: speculation set not closed under transitions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A miniature JSON-string lexer: state 0 = outside string,
    /// 1 = inside string, 2 = inside string after backslash.
    /// Action 1 = structural comma seen outside a string.
    fn string_lexer() -> ByteDfa {
        let mut b = DfaBuilder::new(3, 0);
        b.transition(0, b'"', 1)
            .action(0, b',', 1)
            .default_transition(1, 1)
            .transition(1, b'"', 0)
            .transition(1, b'\\', 2)
            .default_transition(2, 1);
        b.build()
    }

    fn count_commas_seq(input: &[u8]) -> u64 {
        let dfa = string_lexer();
        let mut n = 0;
        dfa.run(0, input, 0, |_, _| n += 1);
        n
    }

    fn frag(input: &[u8], base: u64) -> DfaFragment<Vec<u64>> {
        let dfa = string_lexer();
        DfaFragment::run_block(
            &dfa,
            &[0, 1, 2],
            input,
            base,
            |tape: &mut Vec<u64>, _a, pos, _b| tape.push(pos),
        )
    }

    /// Reference fragment: independent bytewise runs per start state,
    /// fully realised. `run_block` must be logically equal to this for
    /// every input and every kernel.
    fn reference_frag(input: &[u8], base: u64) -> DfaFragment<Vec<u64>> {
        let dfa = string_lexer();
        DfaFragment::from_entries(
            [0u8, 1, 2]
                .iter()
                .map(|&s| {
                    let mut tape = Vec::new();
                    let fin = dfa.run_bytewise(s, input, base, |_a, p| tape.push(p));
                    (s, fin, tape)
                })
                .collect(),
        )
    }

    #[test]
    fn sequential_lexing_skips_quoted_commas() {
        assert_eq!(count_commas_seq(b"a,b,\"x,y\",c,"), 4);
        assert_eq!(count_commas_seq(b"\"a,b\""), 0);
        assert_eq!(count_commas_seq(br#""esc\",still,string",out,"#), 2);
    }

    #[test]
    fn bulk_scan_matches_bytewise_reference() {
        let dfa = string_lexer();
        for input in [
            &b""[..],
            b"plain text without anything interesting at all........",
            b"a,b,\"x,y\",c,",
            br#""esc\",still,string",out,"#,
            b"\\\\\\\"\"\",,,",
            b"ends with quote\"",
            b"0123456\"78,\\",
        ] {
            for start in 0u8..3 {
                let mut fast = Vec::new();
                let mut slow = Vec::new();
                let ff = dfa.run(start, input, 7, |a, p| fast.push((a, p)));
                let fs = dfa.run_bytewise(start, input, 7, |a, p| slow.push((a, p)));
                assert_eq!(ff, fs, "final state, start={start}, input={input:?}");
                assert_eq!(fast, slow, "tape, start={start}, input={input:?}");
            }
        }
    }

    #[test]
    fn skip_classes_are_assigned() {
        // State 1 (in-string) has exactly two interesting bytes — the
        // two-needle class; a state with none gets All; a
        // default-transition state to elsewhere is Dense.
        let dfa = string_lexer();
        assert!(matches!(dfa.skip[1], SkipClass::Few2(..)));
        assert!(matches!(dfa.skip[2], SkipClass::Dense));
        let sink = DfaBuilder::new(1, 0).build();
        assert!(matches!(sink.skip[0], SkipClass::All));
        let mut wide = DfaBuilder::new(2, 0);
        for b in 0..90u8 {
            wide.transition(0, b, 1);
        }
        let wide = wide.build();
        assert!(matches!(wide.skip[0], SkipClass::Bitmap));
        let mut three = DfaBuilder::new(2, 0);
        three.transitions(0, b"abc", 1);
        assert!(matches!(three.build().skip[0], SkipClass::Few4(..)));
        let mut six = DfaBuilder::new(2, 0);
        six.transitions(0, b"abcdef", 1);
        assert!(matches!(six.build().skip[0], SkipClass::Few8(..)));
    }

    #[test]
    fn flattened_table_step_agrees_with_builder_spec() {
        let dfa = string_lexer();
        assert_eq!(dfa.step(0, b','), (0, 1));
        assert_eq!(dfa.step(0, b'"'), (1, 0));
        assert_eq!(dfa.step(1, b'x'), (1, 0));
        assert_eq!(dfa.step(1, b'\\'), (2, 0));
        assert_eq!(dfa.step(2, b'"'), (1, 0));
        assert_eq!(dfa.num_states(), 3);
        assert_eq!(dfa.start_state(), 0);
    }

    #[test]
    fn fragment_resolves_like_sequential() {
        let input = br#"k,"v,1",x,"#;
        let f = frag(input, 0);
        let (fin, tape) = f.resolve(0).unwrap();
        assert_eq!(fin, 0);
        assert_eq!(tape.len() as u64, count_commas_seq(input));
    }

    #[test]
    fn speculation_covers_in_string_starts() {
        // Block starting mid-string: from state 1 the leading `x",` has
        // its comma counted only after the closing quote.
        let input = b"x\",a,";
        let f = frag(input, 0);
        let (fin0, tape0) = f.resolve(0).unwrap();
        let (fin1, tape1) = f.resolve(1).unwrap();
        assert_eq!(fin0, 1, "from outside: quote opens a string");
        assert_eq!(fin1, 0, "from inside: quote closes the string");
        assert_eq!(tape0.len(), 0, "everything after the quote is in-string");
        assert_eq!(tape1.len(), 2);
    }

    #[test]
    fn merge_positions_are_absolute() {
        let left = b"a,b";
        let right = b",c,";
        let f = frag(left, 0).merge(frag(right, left.len() as u64));
        let (_, tape) = f.resolve(0).unwrap();
        assert_eq!(tape, vec![1, 3, 5]);
    }

    #[test]
    fn identity_merges() {
        let f = frag(b"a,b,", 0);
        let id = DfaFragment::<Vec<u64>>::identity();
        assert_eq!(id.clone().merge(f.clone()), f.clone().merge(id));
    }

    #[test]
    fn into_entries_realises_shared_suffix() {
        let input = b"xx\"shared,part,with,commas";
        let f = frag(input, 0);
        let entries = f.clone().into_entries();
        assert_eq!(entries.len(), 3);
        for (s, f2, tape) in entries {
            let (fin, want) = f.resolve(s).unwrap();
            assert_eq!(f2, fin);
            assert_eq!(tape, want);
        }
    }

    #[test]
    fn convergence_after_unescaped_quote() {
        let f = frag(b"xx\"yy", 0);
        assert!(f.distinct_finishing_states() <= 3);
        // Quote parity keeps states 0 and 1 swapped forever, but the
        // escape state 2 folds into the in-string trajectory after one
        // byte: three speculative runs converge to two.
        let g = frag(b"\"a\" , \"b\"", 0);
        assert_eq!(g.distinct_finishing_states(), 2);
    }

    #[test]
    fn run_block_handles_duplicate_start_states() {
        let dfa = string_lexer();
        let input = b"a,\"b,\"c,";
        let f = DfaFragment::run_block(
            &dfa,
            &[0, 1, 0, 2, 1],
            input,
            0,
            |tape: &mut Vec<u64>, _a, pos, _b| tape.push(pos),
        );
        let entries = f.into_entries();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[2].0, 0);
        assert_eq!(entries[0], entries[2], "aliased starts realise identically");
        for (s, fin, tape) in entries {
            let mut want = Vec::new();
            let wf = dfa.run_bytewise(s, input, 0, |_a, p| want.push(p));
            assert_eq!(fin, wf);
            assert_eq!(tape, want);
        }
    }

    #[test]
    fn vectorised_lockstep_matches_reference_on_unconverging_input() {
        // Quote parity keeps OUT/STR speculation unconverged for the
        // whole block, driving the full-lane lockstep path; mix long
        // silent spans (lane skips) with hit-dense spans.
        let mut input = Vec::new();
        for i in 0..64 {
            input.extend_from_slice(b"plain text with no structure at all............");
            input.extend_from_slice(b"\"k\":1,\"v\":2,,,");
            if i % 7 == 0 {
                input.extend_from_slice(b"\\\"esc\\\\");
            }
        }
        for cut in [0, 1, 7, 15, 16, 17, 31, 32, 33, 63, 64, input.len()] {
            let sub = &input[cut..];
            assert_eq!(frag(sub, 3), reference_frag(sub, 3), "offset {cut}");
        }
    }

    fn arb_input() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(prop::sample::select(b"ab,\"\\ :x".to_vec()), 0..120)
    }

    proptest! {
        #[test]
        fn split_invariance(input in arb_input(), cut in 0usize..120) {
            let cut = cut.min(input.len());
            let (l, r) = input.split_at(cut);
            let merged = frag(l, 0).merge(frag(r, cut as u64));
            let whole = frag(&input, 0);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn any_block_count_matches_sequential(input in arb_input(), nblocks in 1usize..8) {
            let chunk = input.len().div_ceil(nblocks).max(1);
            let frags: Vec<_> = input
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| frag(c, (i * chunk) as u64))
                .collect();
            let merged = crate::merge::merge_tree(frags);
            if merged.is_identity() {
                prop_assert_eq!(count_commas_seq(&input), 0);
            } else {
                let (_, tape) = merged.resolve(0).unwrap();
                prop_assert_eq!(tape.len() as u64, count_commas_seq(&input));
            }
        }

        #[test]
        fn merge_is_associative(a in arb_input(), b in arb_input(), c in arb_input()) {
            let fa = frag(&a, 0);
            let fb = frag(&b, a.len() as u64);
            let fc = frag(&c, (a.len() + b.len()) as u64);
            let left = fa.clone().merge(fb.clone()).merge(fc.clone());
            let right = fa.merge(fb.merge(fc));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn bulk_scan_equals_bytewise_on_random_input(input in arb_input(), start in 0u8..3) {
            let dfa = string_lexer();
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            let ff = dfa.run(start, &input, 0, |a, p| fast.push((a, p)));
            let fs = dfa.run_bytewise(start, &input, 0, |a, p| slow.push((a, p)));
            prop_assert_eq!(ff, fs);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn run_block_equals_independent_bytewise_runs(input in arb_input(), base in 0u64..1000) {
            prop_assert_eq!(frag(&input, base), reference_frag(&input, base));
        }
    }
}
