//! Table-driven byte-level deterministic finite transducers and their
//! speculative fragments.
//!
//! §3.3: "Lexing is handled by finite transducers optimised for small
//! transition tables. As a transition must be performed after each
//! byte, precomputation is used for all the transition tables." A
//! [`ByteDfa`] stores one 256-entry transition row and one 256-entry
//! action row per state; the associative execution runs a block from
//! every possible starting state ([`DfaFragment::run_block`]) and
//! merges per-start tapes with relation composition.
//!
//! The fragment exploits *convergence* (§3.1): speculation proceeds
//! byte-by-byte only until every speculative run has reached the same
//! state, after which a single shared run covers the rest of the block
//! and its tape is shared by all starting states — the same
//! tape-sharing trick the paper implements with output matrices.

use crate::merge::Mergeable;

/// Action id meaning "emit nothing".
pub const NO_ACTION: u8 = 0;

/// A deterministic byte-level finite transducer with precomputed
/// transition and action tables.
#[derive(Debug, Clone)]
pub struct ByteDfa {
    n_states: usize,
    start: u8,
    /// `trans[state][byte]` = next state.
    trans: Vec<[u8; 256]>,
    /// `actions[state][byte]` = action id emitted *on consuming* `byte`
    /// in `state` (0 = none).
    actions: Vec<[u8; 256]>,
}

impl ByteDfa {
    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n_states
    }

    /// The designated starting state.
    #[inline]
    pub fn start_state(&self) -> u8 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u8, byte: u8) -> (u8, u8) {
        let s = state as usize;
        (self.trans[s][byte as usize], self.actions[s][byte as usize])
    }

    /// Runs sequentially from `state`, invoking `emit(action, position)`
    /// for every non-zero action. Returns the final state.
    pub fn run<F: FnMut(u8, u64)>(&self, mut state: u8, bytes: &[u8], base: u64, mut emit: F) -> u8 {
        for (i, &b) in bytes.iter().enumerate() {
            let (next, action) = self.step(state, b);
            if action != NO_ACTION {
                emit(action, base + i as u64);
            }
            state = next;
        }
        state
    }
}

/// Builder for [`ByteDfa`]. States are added explicitly; transitions
/// default to self-loops with no action until overridden.
#[derive(Debug, Clone, Default)]
pub struct DfaBuilder {
    trans: Vec<[u8; 256]>,
    actions: Vec<[u8; 256]>,
    start: u8,
}

impl DfaBuilder {
    /// Creates a builder with `n` states (all self-looping), starting
    /// in state `start`.
    pub fn new(n: usize, start: u8) -> Self {
        assert!(n > 0 && n <= 255, "state count must be in 1..=255");
        assert!((start as usize) < n);
        let mut trans = Vec::with_capacity(n);
        for s in 0..n {
            trans.push([s as u8; 256]);
        }
        DfaBuilder {
            trans,
            actions: vec![[NO_ACTION; 256]; n],
            start,
        }
    }

    /// Sets the transition for every byte from `from` to `to`
    /// (a "default" edge; override specific bytes afterwards).
    pub fn default_transition(&mut self, from: u8, to: u8) -> &mut Self {
        self.trans[from as usize] = [to; 256];
        self
    }

    /// Sets the transition for one byte.
    pub fn transition(&mut self, from: u8, byte: u8, to: u8) -> &mut Self {
        self.trans[from as usize][byte as usize] = to;
        self
    }

    /// Sets transitions for every byte in `bytes`.
    pub fn transitions(&mut self, from: u8, bytes: &[u8], to: u8) -> &mut Self {
        for &b in bytes {
            self.trans[from as usize][b as usize] = to;
        }
        self
    }

    /// Attaches an action to one byte consumed in `from`.
    pub fn action(&mut self, from: u8, byte: u8, action: u8) -> &mut Self {
        self.actions[from as usize][byte as usize] = action;
        self
    }

    /// Attaches an action to every byte in `bytes` consumed in `from`.
    pub fn action_on(&mut self, from: u8, bytes: &[u8], action: u8) -> &mut Self {
        for &b in bytes {
            self.actions[from as usize][b as usize] = action;
        }
        self
    }

    /// Finalises the automaton.
    pub fn build(self) -> ByteDfa {
        ByteDfa {
            n_states: self.trans.len(),
            start: self.start,
            trans: self.trans,
            actions: self.actions,
        }
    }
}

/// A speculative fragment of a byte DFA run over one block: for each
/// possible starting state, the finishing state and the tape built by a
/// caller-supplied sink.
#[derive(Debug, Clone, PartialEq)]
pub struct DfaFragment<O> {
    /// `(start, finish, tape)` triples, one per speculated start state.
    pub entries: Vec<(u8, u8, O)>,
}

impl<O: Mergeable + Clone> DfaFragment<O> {
    /// Builds the fragment for `bytes` speculating from each state in
    /// `starts`. `build(tape, action, absolute_position, byte)` folds
    /// emitted actions into the per-start tape; `base` is the block's
    /// absolute offset in the input, so emitted positions are global.
    ///
    /// Runs speculatively byte-by-byte until all runs converge to one
    /// state, then completes with a single shared run whose tape is
    /// merged into every entry.
    pub fn run_block<F>(dfa: &ByteDfa, starts: &[u8], bytes: &[u8], base: u64, mut build: F) -> Self
    where
        F: FnMut(&mut O, u8, u64, u8),
    {
        let mut states: Vec<u8> = starts.to_vec();
        let mut tapes: Vec<O> = starts.iter().map(|_| O::identity()).collect();
        let mut pos = 0usize;

        // Speculative phase: all start states in lockstep until
        // convergence.
        while pos < bytes.len() {
            let converged = states.windows(2).all(|w| w[0] == w[1]);
            if converged {
                break;
            }
            let b = bytes[pos];
            for (state, tape) in states.iter_mut().zip(tapes.iter_mut()) {
                let (next, action) = dfa.step(*state, b);
                if action != NO_ACTION {
                    build(tape, action, base + pos as u64, b);
                }
                *state = next;
            }
            pos += 1;
        }

        // Shared phase: one run, tape shared by all starts.
        if pos < bytes.len() {
            let mut shared = O::identity();
            let fin = dfa.run(states[0], &bytes[pos..], base + pos as u64, |action, p| {
                build(&mut shared, action, p, bytes[(p - base) as usize]);
            });
            let n = tapes.len();
            for (i, (state, tape)) in states.iter_mut().zip(tapes.iter_mut()).enumerate() {
                *state = fin;
                let prev = std::mem::replace(tape, O::identity());
                *tape = if i + 1 == n {
                    prev.merge(std::mem::replace(&mut shared, O::identity()))
                } else {
                    prev.merge(shared.clone())
                };
            }
        }

        DfaFragment {
            entries: starts
                .iter()
                .zip(states)
                .zip(tapes)
                .map(|((&s, f), t)| (s, f, t))
                .collect(),
        }
    }

    /// Relation composition: for every entry of `self`, chase its
    /// finishing state through `other`. Returns `None` when `other`
    /// did not speculate from a state `self` finishes in (a speculation
    /// set mismatch — callers either speculate on all states or prove
    /// the set closed under transitions).
    pub fn try_merge_with(&self, other: &DfaFragment<O>) -> Option<DfaFragment<O>> {
        let mut entries = Vec::with_capacity(self.entries.len());
        for (s, mid, tape) in &self.entries {
            let (_, fin, tail) = other.entries.iter().find(|(rs, _, _)| rs == mid)?;
            entries.push((*s, *fin, tape.clone().merge(tail.clone())));
        }
        Some(DfaFragment { entries })
    }

    /// Resolves against the true starting state.
    pub fn resolve(&self, start: u8) -> Option<(u8, &O)> {
        self.entries
            .iter()
            .find(|(s, _, _)| *s == start)
            .map(|(_, f, o)| (*f, o))
    }

    /// Distinct finishing states (convergence measure).
    pub fn distinct_finishing_states(&self) -> usize {
        let mut fins: Vec<u8> = self.entries.iter().map(|e| e.1).collect();
        fins.sort_unstable();
        fins.dedup();
        fins.len()
    }
}

impl<O: Mergeable + Clone> Mergeable for DfaFragment<O> {
    fn identity() -> Self {
        DfaFragment {
            entries: Vec::new(),
        }
    }

    fn merge(self, other: Self) -> Self {
        if self.entries.is_empty() {
            return other;
        }
        if other.entries.is_empty() {
            return self;
        }
        self.try_merge_with(&other)
            .expect("DFA fragment merge: speculation set not closed under transitions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A miniature JSON-string lexer: state 0 = outside string,
    /// 1 = inside string, 2 = inside string after backslash.
    /// Action 1 = structural comma seen outside a string.
    fn string_lexer() -> ByteDfa {
        let mut b = DfaBuilder::new(3, 0);
        b.transition(0, b'"', 1)
            .action(0, b',', 1)
            .default_transition(1, 1)
            .transition(1, b'"', 0)
            .transition(1, b'\\', 2)
            .default_transition(2, 1);
        b.build()
    }

    fn count_commas_seq(input: &[u8]) -> u64 {
        let dfa = string_lexer();
        let mut n = 0;
        dfa.run(0, input, 0, |_, _| n += 1);
        n
    }

    fn frag(input: &[u8], base: u64) -> DfaFragment<Vec<u64>> {
        let dfa = string_lexer();
        DfaFragment::run_block(&dfa, &[0, 1, 2], input, base, |tape: &mut Vec<u64>, _a, pos, _b| {
            tape.push(pos)
        })
    }

    #[test]
    fn sequential_lexing_skips_quoted_commas() {
        assert_eq!(count_commas_seq(b"a,b,\"x,y\",c,"), 4);
        assert_eq!(count_commas_seq(b"\"a,b\""), 0);
        assert_eq!(count_commas_seq(br#""esc\",still,string",out,"#), 2);
    }

    #[test]
    fn fragment_resolves_like_sequential() {
        let input = br#"k,"v,1",x,"#;
        let f = frag(input, 0);
        let (fin, tape) = f.resolve(0).unwrap();
        assert_eq!(fin, 0);
        assert_eq!(tape.len() as u64, count_commas_seq(input));
    }

    #[test]
    fn speculation_covers_in_string_starts() {
        // Block starting mid-string: from state 1 the leading `x",` has
        // its comma counted only after the closing quote.
        let input = b"x\",a,";
        let f = frag(input, 0);
        let (fin0, tape0) = f.resolve(0).unwrap();
        let (fin1, tape1) = f.resolve(1).unwrap();
        assert_eq!(fin0, 1, "from outside: quote opens a string");
        assert_eq!(fin1, 0, "from inside: quote closes the string");
        assert_eq!(tape0.len(), 0, "everything after the quote is in-string");
        assert_eq!(tape1.len(), 2);
    }

    #[test]
    fn merge_positions_are_absolute() {
        let left = b"a,b";
        let right = b",c,";
        let f = frag(left, 0).merge(frag(right, left.len() as u64));
        let (_, tape) = f.resolve(0).unwrap();
        assert_eq!(tape, &vec![1, 3, 5]);
    }

    #[test]
    fn identity_merges() {
        let f = frag(b"a,b,", 0);
        let id = DfaFragment::<Vec<u64>>::identity();
        assert_eq!(id.clone().merge(f.clone()), f.clone().merge(id));
    }

    #[test]
    fn convergence_after_unescaped_quote() {
        // Any block containing an unescaped quote outside an escape
        // forces convergence of {0,1,2}.
        let f = frag(b"xx\"yy", 0);
        // After the quote, states 0 and 1 have swapped... they converge
        // only after enough structure; verify distinct count <= 3 and
        // the two-quote case fully converges.
        assert!(f.distinct_finishing_states() <= 3);
        // Quote parity keeps states 0 and 1 swapped forever, but the
        // escape state 2 folds into the in-string trajectory after one
        // byte: three speculative runs converge to two.
        let g = frag(b"\"a\" , \"b\"", 0);
        assert_eq!(g.distinct_finishing_states(), 2);
    }

    fn arb_input() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(
            prop::sample::select(b"ab,\"\\ :x".to_vec()),
            0..120,
        )
    }

    proptest! {
        #[test]
        fn split_invariance(input in arb_input(), cut in 0usize..120) {
            let cut = cut.min(input.len());
            let (l, r) = input.split_at(cut);
            let merged = frag(l, 0).merge(frag(r, cut as u64));
            let whole = frag(&input, 0);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn any_block_count_matches_sequential(input in arb_input(), nblocks in 1usize..8) {
            let chunk = input.len().div_ceil(nblocks).max(1);
            let frags: Vec<_> = input
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| frag(c, (i * chunk) as u64))
                .collect();
            let merged = crate::merge::merge_tree(frags);
            if merged.entries.is_empty() {
                prop_assert_eq!(count_commas_seq(&input), 0);
            } else {
                let (_, tape) = merged.resolve(0).unwrap();
                prop_assert_eq!(tape.len() as u64, count_commas_seq(&input));
            }
        }

        #[test]
        fn merge_is_associative(a in arb_input(), b in arb_input(), c in arb_input()) {
            let fa = frag(&a, 0);
            let fb = frag(&b, a.len() as u64);
            let fc = frag(&c, (a.len() + b.len()) as u64);
            let left = fa.clone().merge(fb.clone()).merge(fc.clone());
            let right = fa.merge(fb.merge(fc));
            prop_assert_eq!(left, right);
        }
    }
}
