//! The associative form of pushdown (structural) parsing.
//!
//! §3.3 chooses pushdown transducers for parsing spatial formats. A
//! block of a well-nested token stream cannot know its absolute
//! nesting depth, but its *effect* on the depth is summarised exactly
//! by two integers — the minimum relative depth reached (how far the
//! block "pops" below its entry depth) and the net depth change — and
//! that summary composes associatively. Events emitted by the parser
//! (geometry starts, coordinate offsets, …) are tagged with the
//! block-relative depth at which they occurred and rebased when
//! fragments merge, so downstream transducers can resolve structural
//! context once absolute depth becomes known.

use crate::merge::Mergeable;

/// An event emitted at some nesting depth, relative to the containing
/// fragment's entry depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthEvent<E> {
    /// Depth relative to the fragment's entry depth (may be negative
    /// when the event happened below it).
    pub depth: i32,
    /// The event payload.
    pub payload: E,
}

/// Associative summary of a block of open/close tokens plus its
/// depth-tagged events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DyckFragment<E> {
    /// Minimum relative depth reached (≤ 0).
    pub min: i32,
    /// Net depth change of the block.
    pub net: i32,
    /// Events in input order, with block-relative depths.
    pub events: Vec<DepthEvent<E>>,
}

impl<E> Default for DyckFragment<E> {
    fn default() -> Self {
        DyckFragment {
            min: 0,
            net: 0,
            events: Vec::new(),
        }
    }
}

impl<E> DyckFragment<E> {
    /// Processes an *open* token (depth +1).
    #[inline]
    pub fn open(&mut self) {
        self.net += 1;
    }

    /// Processes a *close* token (depth −1).
    #[inline]
    pub fn close(&mut self) {
        self.net -= 1;
        self.min = self.min.min(self.net);
    }

    /// Records an event at the current relative depth.
    #[inline]
    pub fn event(&mut self, payload: E) {
        self.events.push(DepthEvent {
            depth: self.net,
            payload,
        });
    }

    /// Current relative depth (== net so far).
    #[inline]
    pub fn depth(&self) -> i32 {
        self.net
    }

    /// Resolves events against a known absolute entry depth, yielding
    /// `(absolute_depth, payload)` pairs in input order.
    pub fn resolve(self, entry_depth: i32) -> impl Iterator<Item = (i32, E)> {
        self.events
            .into_iter()
            .map(move |e| (entry_depth + e.depth, e.payload))
    }

    /// True when the block is balanced (never pops below entry, ends at
    /// entry depth).
    pub fn is_balanced(&self) -> bool {
        self.min == 0 && self.net == 0
    }
}

impl<E> Mergeable for DyckFragment<E> {
    fn identity() -> Self {
        DyckFragment::default()
    }

    fn merge(mut self, other: Self) -> Self {
        let shift = self.net;
        self.min = self.min.min(shift + other.min);
        self.net = shift + other.net;
        self.events.reserve(other.events.len());
        self.events
            .extend(other.events.into_iter().map(|e| DepthEvent {
                depth: e.depth + shift,
                payload: e.payload,
            }));
        self
    }
}

/// Builds a fragment from a token stream where `+1` opens, `-1`
/// closes and `0` emits an event carrying its stream index. Test and
/// documentation helper.
pub fn fragment_from_tokens(tokens: &[i8]) -> DyckFragment<usize> {
    let mut f = DyckFragment::default();
    for (i, &t) in tokens.iter().enumerate() {
        match t {
            1 => f.open(),
            -1 => f.close(),
            _ => f.event(i),
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_block() {
        // "(()())" with an event inside.
        let f = fragment_from_tokens(&[1, 1, -1, 0, 1, -1, -1]);
        assert!(f.is_balanced());
        assert_eq!(f.events.len(), 1);
        assert_eq!(f.events[0].depth, 1);
    }

    #[test]
    fn unbalanced_block_records_excursion() {
        // ")) ((" : pops 2 below entry then opens 2.
        let f = fragment_from_tokens(&[-1, -1, 1, 1]);
        assert_eq!(f.min, -2);
        assert_eq!(f.net, 0);
        assert!(!f.is_balanced());
    }

    #[test]
    fn merge_rebases_event_depths() {
        let left = fragment_from_tokens(&[1, 1]); // net +2
        let right = fragment_from_tokens(&[0, -1, 0]); // events at 0 and -1
        let merged = left.merge(right);
        assert_eq!(merged.events[0].depth, 2);
        assert_eq!(merged.events[1].depth, 1);
        assert_eq!(merged.net, 1);
    }

    #[test]
    fn resolve_produces_absolute_depths() {
        let f = fragment_from_tokens(&[1, 0, 1, 0, -1, -1, 0]);
        let depths: Vec<i32> = f.resolve(5).map(|(d, _)| d).collect();
        assert_eq!(depths, vec![6, 7, 5]);
    }

    fn arb_tokens() -> impl Strategy<Value = Vec<i8>> {
        prop::collection::vec(prop::sample::select(vec![1i8, -1, 0]), 0..100)
    }

    fn sequential_depths(tokens: &[i8]) -> (i32, i32, Vec<i32>) {
        let mut depth = 0;
        let mut min = 0;
        let mut events = Vec::new();
        for &t in tokens {
            match t {
                1 => depth += 1,
                -1 => {
                    depth -= 1;
                    min = min.min(depth);
                }
                _ => events.push(depth),
            }
        }
        (min, depth, events)
    }

    proptest! {
        #[test]
        fn split_invariance(tokens in arb_tokens(), cut in 0usize..100) {
            let cut = cut.min(tokens.len());
            let (l, r) = tokens.split_at(cut);
            // Right fragment events are indexed locally; rebase indices
            // by building with global indices for comparability.
            let mut fl = DyckFragment::default();
            for (i, &t) in l.iter().enumerate() {
                match t { 1 => fl.open(), -1 => fl.close(), _ => fl.event(i) }
            }
            let mut fr = DyckFragment::default();
            for (i, &t) in r.iter().enumerate() {
                match t { 1 => fr.open(), -1 => fr.close(), _ => fr.event(cut + i) }
            }
            let merged = fl.merge(fr);
            let whole = fragment_from_tokens(&tokens);
            prop_assert_eq!(merged, whole);
        }

        #[test]
        fn fragment_matches_sequential(tokens in arb_tokens(), entry in 0i32..10) {
            let f = fragment_from_tokens(&tokens);
            let (min, net, depths) = sequential_depths(&tokens);
            prop_assert_eq!(f.min, min);
            prop_assert_eq!(f.net, net);
            let resolved: Vec<i32> = f.resolve(entry).map(|(d, _)| d).collect();
            let expect: Vec<i32> = depths.iter().map(|d| d + entry).collect();
            prop_assert_eq!(resolved, expect);
        }

        #[test]
        fn merge_is_associative(a in arb_tokens(), b in arb_tokens(), c in arb_tokens()) {
            let fa = fragment_from_tokens(&a);
            let fb = fragment_from_tokens(&b);
            let fc = fragment_from_tokens(&c);
            let left = fa.clone().merge(fb.clone()).merge(fc.clone());
            let right = fa.merge(fb.merge(fc));
            prop_assert_eq!(left, right);
        }
    }
}
