//! Periodically flushing transducers (PFTs, §3.3 and Fig. 4).
//!
//! A PFT aggregates runs of *processing* symbols delimited by
//! *flushing* symbols — e.g. points aggregated into one MBR per
//! geometry, with geometry boundaries as flush markers. The associative
//! fragment keeps two copies of the aggregation state:
//!
//! * the **speculative** (head) state aggregates symbols before the
//!   first flush in the block — it belongs to a geometry that *started
//!   in an earlier block*, so its output "is not determined until
//!   merging";
//! * the **main** (tail) state aggregates symbols after the last flush;
//! * completed aggregations between the first and last flush are
//!   emitted to the fragment's output tape immediately.
//!
//! Merging joins the left fragment's tail with the right fragment's
//! head ("the main state at the end of the first must be merged with
//! the speculative state at the beginning of the second. The result is
//! a new aggregation that must be inserted into the output tape
//! between the tapes of the two merged fragments").

use crate::merge::Mergeable;

/// The aggregation wrapped by a periodically flushing transducer.
pub trait FlushAggregate {
    /// Processing symbol type.
    type Sym;
    /// Per-run aggregation state; its merge joins two partial runs of
    /// the same geometry.
    type State: Mergeable + Clone;
    /// Output emitted when a run is flushed.
    type Out;

    /// Folds one processing symbol into the run state.
    fn absorb(state: &mut Self::State, sym: &Self::Sym);
    /// Converts a completed run state into an output. `None` suppresses
    /// the output (e.g. empty runs).
    fn finish(state: Self::State) -> Option<Self::Out>;
}

/// The associative fragment of a periodically flushing transducer.
#[derive(Debug)]
pub struct PftFragment<A: FlushAggregate> {
    /// Aggregation of symbols before the first flush (speculative).
    pub head: A::State,
    /// Completed outputs between the first and last flush.
    pub outputs: Vec<A::Out>,
    /// Aggregation of symbols after the last flush (main).
    pub tail: A::State,
    /// Whether any flush symbol was seen (the "additional bit" of
    /// §3.3).
    pub seen_flush: bool,
    /// Whether any symbol at all was absorbed into `head` (needed so
    /// an all-processing fragment can report emptiness precisely).
    head_nonempty: bool,
    /// Whether any symbol was absorbed into `tail` since the last
    /// flush.
    tail_nonempty: bool,
}

impl<A: FlushAggregate> Default for PftFragment<A> {
    fn default() -> Self {
        PftFragment {
            head: A::State::identity(),
            outputs: Vec::new(),
            tail: A::State::identity(),
            seen_flush: false,
            head_nonempty: false,
            tail_nonempty: false,
        }
    }
}

impl<A: FlushAggregate> Clone for PftFragment<A>
where
    A::Out: Clone,
{
    fn clone(&self) -> Self {
        PftFragment {
            head: self.head.clone(),
            outputs: self.outputs.clone(),
            tail: self.tail.clone(),
            seen_flush: self.seen_flush,
            head_nonempty: self.head_nonempty,
            tail_nonempty: self.tail_nonempty,
        }
    }
}

impl<A: FlushAggregate> PartialEq for PftFragment<A>
where
    A::State: PartialEq,
    A::Out: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head
            && self.outputs == other.outputs
            && self.tail == other.tail
            && self.seen_flush == other.seen_flush
            && self.head_nonempty == other.head_nonempty
            && self.tail_nonempty == other.tail_nonempty
    }
}

impl<A: FlushAggregate> PftFragment<A> {
    /// Creates an empty fragment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one processing symbol.
    pub fn process(&mut self, sym: &A::Sym) {
        if self.seen_flush {
            A::absorb(&mut self.tail, sym);
            self.tail_nonempty = true;
        } else {
            A::absorb(&mut self.head, sym);
            self.head_nonempty = true;
        }
    }

    /// Processes one flushing symbol: completes the current run.
    pub fn flush(&mut self) {
        if self.seen_flush {
            let state = std::mem::replace(&mut self.tail, A::State::identity());
            if self.tail_nonempty {
                if let Some(out) = A::finish(state) {
                    self.outputs.push(out);
                }
            }
            self.tail_nonempty = false;
        } else {
            // The head run completes here, but whether it is a whole
            // geometry (block started exactly at a boundary / input
            // start) or the tail of an earlier one is unknown until
            // merge — keep it in `head`.
            self.seen_flush = true;
        }
    }

    /// Builds a fragment from a block of symbols, with `is_flush`
    /// classifying flush symbols (the `P`/`F` partition of §3.3).
    pub fn from_block(syms: &[A::Sym], is_flush: impl Fn(&A::Sym) -> bool) -> Self {
        let mut f = Self::new();
        for s in syms {
            if is_flush(s) {
                f.flush();
            } else {
                f.process(s);
            }
        }
        f
    }

    /// Finalises a fully merged fragment into the output sequence,
    /// treating the input start as a geometry boundary. A trailing
    /// partial run (no final flush) is emitted too when non-empty.
    pub fn finalize(mut self) -> Vec<A::Out> {
        let mut result = Vec::with_capacity(self.outputs.len() + 2);
        if self.seen_flush {
            if self.head_nonempty {
                if let Some(out) = A::finish(self.head) {
                    result.push(out);
                }
            }
            result.append(&mut self.outputs);
            if self.tail_nonempty {
                if let Some(out) = A::finish(self.tail) {
                    result.push(out);
                }
            }
        } else if self.head_nonempty {
            if let Some(out) = A::finish(self.head) {
                result.push(out);
            }
        }
        result
    }
}

impl<A: FlushAggregate> Mergeable for PftFragment<A> {
    fn identity() -> Self {
        Self::default()
    }

    fn merge(mut self, mut other: Self) -> Self {
        match (self.seen_flush, other.seen_flush) {
            (false, false) => {
                // Neither saw a boundary: one continuing run.
                let head = std::mem::replace(&mut self.head, A::State::identity());
                self.head = head.merge(other.head);
                self.head_nonempty |= other.head_nonempty;
                self
            }
            (true, false) => {
                // Right block is entirely a continuation of our tail.
                let tail = std::mem::replace(&mut self.tail, A::State::identity());
                self.tail = tail.merge(other.head);
                self.tail_nonempty |= other.head_nonempty;
                self
            }
            (false, true) => {
                // Our whole content is the left part of right's head.
                let head = std::mem::replace(&mut self.head, A::State::identity());
                other.head = head.merge(other.head);
                other.head_nonempty |= self.head_nonempty;
                other
            }
            (true, true) => {
                // The boundary-spanning run: left tail ++ right head,
                // flushed by right's first flush symbol.
                let spanning =
                    std::mem::replace(&mut self.tail, A::State::identity()).merge(other.head);
                if self.tail_nonempty || other.head_nonempty {
                    if let Some(out) = A::finish(spanning) {
                        self.outputs.push(out);
                    }
                }
                self.outputs.append(&mut other.outputs);
                self.tail = other.tail;
                self.tail_nonempty = other.tail_nonempty;
                self
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::FSum;
    use proptest::prelude::*;

    /// Test aggregate: sums f64 runs (stands in for MBR building).
    struct RunSum;

    impl FlushAggregate for RunSum {
        type Sym = f64;
        type State = FSum;
        type Out = f64;

        fn absorb(state: &mut FSum, sym: &f64) {
            state.0 += sym;
        }
        fn finish(state: FSum) -> Option<f64> {
            Some(state.0)
        }
    }

    /// Symbols: NaN = flush, anything else = processing (mirrors the
    /// paper's P/F symbol partition).
    fn is_flush(x: &f64) -> bool {
        x.is_nan()
    }

    fn sequential(syms: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        let mut acc = 0.0;
        let mut nonempty = false;
        for &s in syms {
            if s.is_nan() {
                if nonempty {
                    out.push(acc);
                }
                acc = 0.0;
                nonempty = false;
            } else {
                acc += s;
                nonempty = true;
            }
        }
        if nonempty {
            out.push(acc);
        }
        out
    }

    #[test]
    fn fig4_pattern() {
        // P P P F P P P P F P P P F P P  (Fig. 4) — runs of 3, 4, 3
        // then a trailing partial run of 2.
        let f = f64::NAN;
        let syms = [1., 1., 1., f, 1., 1., 1., 1., f, 1., 1., 1., f, 1., 1.];
        let frag = PftFragment::<RunSum>::from_block(&syms, is_flush);
        assert_eq!(frag.finalize(), vec![3.0, 4.0, 3.0, 2.0]);
    }

    #[test]
    fn boundary_spanning_run_completes_at_merge() {
        let f = f64::NAN;
        // Geometry of value 5 split 2/3 across the block boundary.
        let left = PftFragment::<RunSum>::from_block(&[1., f, 2.], is_flush);
        let right = PftFragment::<RunSum>::from_block(&[3., f, 4.], is_flush);
        let merged = left.merge(right);
        assert_eq!(merged.finalize(), vec![1.0, 5.0, 4.0]);
    }

    #[test]
    fn flush_only_fragment() {
        let f = f64::NAN;
        let frag = PftFragment::<RunSum>::from_block(&[f, f], is_flush);
        assert!(frag.finalize().is_empty(), "empty runs are suppressed");
    }

    #[test]
    fn no_flush_fragment_is_single_run() {
        let frag = PftFragment::<RunSum>::from_block(&[1., 2.], is_flush);
        assert_eq!(frag.finalize(), vec![3.0]);
    }

    #[test]
    fn empty_fragment() {
        let frag = PftFragment::<RunSum>::from_block(&[], is_flush);
        assert!(frag.finalize().is_empty());
    }

    #[test]
    fn merge_with_identity() {
        let f = f64::NAN;
        let frag = PftFragment::<RunSum>::from_block(&[1., f, 2.], is_flush);
        let id = PftFragment::<RunSum>::identity();
        assert_eq!(
            id.clone().merge(frag.clone()).finalize(),
            frag.clone().merge(id).finalize()
        );
    }

    fn approx(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
    }

    fn arb_syms() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(prop_oneof![3 => 1.0..10.0f64, 1 => Just(f64::NAN)], 0..80)
    }

    proptest! {
        #[test]
        fn split_invariance(syms in arb_syms(), cut in 0usize..80) {
            let cut = cut.min(syms.len());
            let (l, r) = syms.split_at(cut);
            let merged = PftFragment::<RunSum>::from_block(l, is_flush)
                .merge(PftFragment::<RunSum>::from_block(r, is_flush));
            let (got, want) = (merged.finalize(), sequential(&syms));
            prop_assert!(approx(&got, &want), "{got:?} vs {want:?}");
        }

        #[test]
        fn multiway_split_matches_sequential(syms in arb_syms(), blocks in 1usize..10) {
            let chunk = syms.len().div_ceil(blocks).max(1);
            let frags: Vec<_> = syms
                .chunks(chunk)
                .map(|b| PftFragment::<RunSum>::from_block(b, is_flush))
                .collect();
            let merged = crate::merge::merge_tree(frags);
            let (got, want) = (merged.finalize(), sequential(&syms));
            prop_assert!(approx(&got, &want), "{got:?} vs {want:?}");
        }

        #[test]
        fn merge_is_associative(a in arb_syms(), b in arb_syms(), c in arb_syms()) {
            let fa = PftFragment::<RunSum>::from_block(&a, is_flush);
            let fb = PftFragment::<RunSum>::from_block(&b, is_flush);
            let fc = PftFragment::<RunSum>::from_block(&c, is_flush);
            let left = fa.clone().merge(fb.clone()).merge(fc.clone());
            let right = fa.merge(fb.merge(fc));
            let (l, r) = (left.finalize(), right.finalize());
            prop_assert!(approx(&l, &r), "{l:?} vs {r:?}");
        }
    }
}
