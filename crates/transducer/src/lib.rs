//! Associative transducers (ATs) — the computational model of AT-GIS.
//!
//! A deterministic transducer executes as a left fold: state and output
//! tape advance one input symbol at a time, which is inherently
//! sequential. §3.1 of the paper lifts this to an *associative* model:
//! instead of a single state, a **fragment** carries a state-mapping
//! relation (every possible starting state → its finishing state) plus
//! output tapes *predicated* on the starting state. Fragments for
//! arbitrary input blocks can be built independently (speculatively)
//! and merged with an associative ⊗ operator, so a pipeline of
//! transducers runs data-parallel over blocks of raw input.
//!
//! The crate provides:
//!
//! * [`classic`] — a direct, textbook implementation of §3.1's formal
//!   model (relation + predicated tapes), used for tests and as
//!   executable documentation of the paper's matching/counting
//!   examples;
//! * [`dfa`] — table-driven byte-level deterministic finite transducers
//!   and their speculative fragments, used for lexing (§3.3 "finite
//!   transducers"). The transition+action tables are flattened into a
//!   single `state × byte → u16` array, and each state carries a
//!   *skip class* computed at build time (SWAR multi-needle scan,
//!   bitmap probe, or dense table walk) so the shared post-convergence
//!   run skips uninteresting bytes 8 at a time instead of stepping the
//!   automaton per byte. Fragments store one **shared** tape for the
//!   converged suffix plus small per-start prefixes, and merges move
//!   tapes instead of cloning them;
//! * [`dyck`] — the associative form of *pushdown* structural parsing:
//!   blocks summarise their bracket-depth effect `(min, net)` and tag
//!   emitted events with block-relative depths that are rebased on
//!   merge (§3.3 "pushdown transducers");
//! * [`stateless`] — stateless transducers (map/filter, §3.3);
//! * [`aggregation`] — aggregation transducers over associative
//!   reduction functions (§3.3);
//! * [`flushing`] — periodically flushing transducers with the
//!   speculative/main state pair of Fig. 4 (§3.3);
//! * [`merge`] — the [`merge::Mergeable`] trait every fragment
//!   implements, plus blanket impls for tuples, vectors and numbers;
//! * [`scan`] — the shared byte-scanning primitives
//!   (`memchr`/`memchr2`/`memchr_n`, lexeme span classes, and the
//!   zero-byte-detect masks) that both the DFA fast path and the
//!   `atgis-formats` scanners build on;
//! * [`simd`] — the runtime-dispatched explicit SIMD kernels behind
//!   [`scan`] (SSE2 baseline + AVX2 behind a cached
//!   `is_x86_feature_detected!` probe, SWAR as the portable fallback,
//!   `ATGIS_NO_SIMD=1` forcing the fallback for differential testing).
//!
//! The defining invariant, property-tested throughout, is
//! **split-invariance**: for any input `s` and any split `s = s₁ ‖ s₂`,
//! `fragment(s₁) ⊗ fragment(s₂) = fragment(s)`, and ⊗ is associative,
//! so any parenthesisation of block merges yields the sequential
//! result.
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as layer 1 of the four-layer design (transducer → formats → core scan/merge → batch/stream/scheduler),
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregation;
pub mod classic;
pub mod dfa;
pub mod dyck;
pub mod flushing;
pub mod merge;
pub mod scan;
pub mod simd;
pub mod stateless;

pub use aggregation::AggregationTransducer;
pub use classic::{ClassicFragment, Transducer};
pub use dfa::{ByteDfa, DfaBuilder, DfaFragment};
pub use dyck::{DepthEvent, DyckFragment};
pub use flushing::{FlushAggregate, PftFragment};
pub use merge::Mergeable;
pub use stateless::StatelessTransducer;
