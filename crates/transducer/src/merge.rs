//! The associative-merge abstraction all fragments share.

/// A value with an associative merge and an identity element — the
/// algebraic requirement §3.2 places on anything stored on a
/// transducer's output tape (the string-concatenation operator `:` "can
/// be replaced by any associative operator ⊗ without invalidating the
/// transformation").
///
/// Laws (property-tested in this crate and downstream):
///
/// * associativity: `a.merge(b).merge(c) == a.merge(b.merge(c))`
/// * identity: `identity().merge(a) == a == a.merge(identity())`
pub trait Mergeable: Sized {
    /// The identity element of the merge.
    fn identity() -> Self;
    /// Associative combination; `self` is the left (earlier-input)
    /// operand.
    fn merge(self, other: Self) -> Self;
}

impl Mergeable for () {
    fn identity() -> Self {}
    fn merge(self, _other: Self) -> Self {}
}

impl<T> Mergeable for Vec<T> {
    fn identity() -> Self {
        Vec::new()
    }
    fn merge(mut self, mut other: Self) -> Self {
        if self.is_empty() {
            return other;
        }
        self.append(&mut other);
        self
    }
}

impl Mergeable for String {
    fn identity() -> Self {
        String::new()
    }
    fn merge(mut self, other: Self) -> Self {
        self.push_str(&other);
        self
    }
}

/// Sum monoid over `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sum(pub u64);

impl Mergeable for Sum {
    fn identity() -> Self {
        Sum(0)
    }
    fn merge(self, other: Self) -> Self {
        Sum(self.0 + other.0)
    }
}

/// Sum monoid over `f64` (associative only up to floating-point
/// rounding; adequate for the paper's numeric aggregations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FSum(pub f64);

impl Mergeable for FSum {
    fn identity() -> Self {
        FSum(0.0)
    }
    fn merge(self, other: Self) -> Self {
        FSum(self.0 + other.0)
    }
}

impl<A: Mergeable, B: Mergeable> Mergeable for (A, B) {
    fn identity() -> Self {
        (A::identity(), B::identity())
    }
    fn merge(self, other: Self) -> Self {
        (self.0.merge(other.0), self.1.merge(other.1))
    }
}

impl<A: Mergeable, B: Mergeable, C: Mergeable> Mergeable for (A, B, C) {
    fn identity() -> Self {
        (A::identity(), B::identity(), C::identity())
    }
    fn merge(self, other: Self) -> Self {
        (
            self.0.merge(other.0),
            self.1.merge(other.1),
            self.2.merge(other.2),
        )
    }
}

impl<T: Mergeable> Mergeable for Option<T> {
    fn identity() -> Self {
        None
    }
    fn merge(self, other: Self) -> Self {
        match (self, other) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }
}

/// Reduces a sequence of fragments with ⊗ in left-to-right order.
/// Equivalent to any balanced parallel reduction by associativity.
pub fn merge_all<T: Mergeable>(items: impl IntoIterator<Item = T>) -> T {
    items.into_iter().fold(T::identity(), |acc, x| acc.merge(x))
}

/// Reduces fragments pairwise in a balanced tree, mimicking the merge
/// phase of a parallel run. Must agree with [`merge_all`] for any
/// `Mergeable` obeying the laws.
pub fn merge_tree<T: Mergeable>(mut items: Vec<T>) -> T {
    if items.is_empty() {
        return T::identity();
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a.merge(b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_laws() {
        #[allow(clippy::unit_cmp, clippy::let_unit_value)]
        {
            let unit = <()>::identity();
            assert_eq!(unit.merge(unit), unit);
        }
    }

    #[test]
    fn vec_merge_concatenates() {
        let a = vec![1, 2];
        let b = vec![3];
        assert_eq!(a.merge(b), vec![1, 2, 3]);
        assert_eq!(Vec::<i32>::identity().merge(vec![7]), vec![7]);
    }

    #[test]
    fn option_merge_combines_inner() {
        let a: Option<Sum> = Some(Sum(2));
        let b: Option<Sum> = Some(Sum(3));
        assert_eq!(a.merge(b), Some(Sum(5)));
        assert_eq!(None::<Sum>.merge(Some(Sum(1))), Some(Sum(1)));
        assert_eq!(Some(Sum(1)).merge(None), Some(Sum(1)));
    }

    #[test]
    fn tuple_merge_is_componentwise() {
        let a = (Sum(1), vec!['x']);
        let b = (Sum(2), vec!['y']);
        assert_eq!(a.merge(b), (Sum(3), vec!['x', 'y']));
    }

    #[test]
    fn merge_tree_handles_sizes() {
        for n in 0..20u64 {
            let frags: Vec<Sum> = (0..n).map(Sum).collect();
            assert_eq!(merge_tree(frags.clone()), merge_all(frags));
        }
    }

    proptest! {
        #[test]
        fn sum_is_associative(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
            let l = Sum(a).merge(Sum(b)).merge(Sum(c));
            let r = Sum(a).merge(Sum(b).merge(Sum(c)));
            prop_assert_eq!(l, r);
        }

        #[test]
        fn vec_is_associative(a in prop::collection::vec(0u8..255, 0..10),
                              b in prop::collection::vec(0u8..255, 0..10),
                              c in prop::collection::vec(0u8..255, 0..10)) {
            let l = a.clone().merge(b.clone()).merge(c.clone());
            let r = a.merge(b.merge(c));
            prop_assert_eq!(l, r);
        }

        #[test]
        fn tree_equals_fold(values in prop::collection::vec(0u64..100, 0..64)) {
            let frags: Vec<Sum> = values.iter().copied().map(Sum).collect();
            prop_assert_eq!(merge_tree(frags.clone()), merge_all(frags));
        }
    }
}
