//! SWAR byte-scanning primitives shared by the transducer fast path
//! ([`crate::dfa`]) and the raw-format scanners in `atgis-formats`:
//! one home for the zero-byte-detection bit trick so the two hot
//! paths cannot drift apart.

/// Broadcast multiplier: `LO * b` repeats byte `b` in every lane.
pub const SWAR_LO: u64 = 0x0101_0101_0101_0101;
/// High-bit mask of every lane.
pub const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Lane mask of the zero bytes of `x`: bit `0x80 << 8k` is set iff
/// byte `k` of `x` is zero (the classic `(x - LO) & !x & HI`
/// zero-byte detector — exact, no false positives).
#[inline(always)]
pub fn zero_byte_mask(x: u64) -> u64 {
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// Lane mask of the bytes of `w` equal to the broadcast needle `bc`
/// (`bc = SWAR_LO * needle`).
#[inline(always)]
pub fn eq_mask(w: u64, bc: u64) -> u64 {
    zero_byte_mask(w ^ bc)
}

/// Position of the first occurrence of `needle` at or after `from`,
/// testing 8 haystack bytes per iteration.
pub fn memchr(needle: u8, haystack: &[u8], from: usize) -> Option<usize> {
    let bc = SWAR_LO.wrapping_mul(needle as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8 bytes"));
        let hits = eq_mask(w, bc);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[i.min(haystack.len())..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// Position of the first occurrence of `a` or `b` at or after `from`,
/// 8 bytes per iteration.
pub fn memchr2(a: u8, b: u8, haystack: &[u8], from: usize) -> Option<usize> {
    let bca = SWAR_LO.wrapping_mul(a as u64);
    let bcb = SWAR_LO.wrapping_mul(b as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8 bytes"));
        let hits = eq_mask(w, bca) | eq_mask(w, bcb);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[i.min(haystack.len())..]
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn memchr_finds_across_word_boundaries() {
        let hay = b"0123456789abcdef#0123456";
        assert_eq!(memchr(b'#', hay, 0), Some(16));
        assert_eq!(memchr(b'#', hay, 17), None);
        assert_eq!(memchr(b'0', hay, 1), Some(17));
        assert_eq!(memchr(b'x', b"", 0), None);
    }

    proptest! {
        #[test]
        fn memchr_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#\x00\xff".to_vec()), 0..80),
            from in 0usize..80,
        ) {
            let want = if from <= hay.len() {
                hay[from..].iter().position(|&b| b == b'#').map(|p| p + from)
            } else {
                None
            };
            prop_assert_eq!(memchr(b'#', &hay, from.min(hay.len())), want);
        }

        #[test]
        fn memchr2_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#@\x00".to_vec()), 0..80),
            from in 0usize..80,
        ) {
            let from = from.min(hay.len());
            let want = hay[from..]
                .iter()
                .position(|&b| b == b'#' || b == b'@')
                .map(|p| p + from);
            prop_assert_eq!(memchr2(b'#', b'@', &hay, from), want);
        }
    }
}
