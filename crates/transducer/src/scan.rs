//! Byte-scanning primitives shared by the transducer fast path
//! ([`crate::dfa`]) and the raw-format scanners in `atgis-formats`.
//!
//! The public entry points ([`memchr`], [`memchr2`], [`memchr_n`],
//! [`number_span`], [`json_scalar_span`]) dispatch once per call on
//! the cached [`crate::simd::kernel`] probe: AVX2 (32-byte lanes) when
//! the CPU reports it, SSE2 (16-byte lanes, the x86_64 baseline)
//! otherwise, and the portable SWAR kernels kept verbatim below on
//! every other architecture or when `ATGIS_NO_SIMD` forces the
//! fallback. All kernels are bit-identical at every alignment — one
//! home for the zero-byte-detection bit trick so the hot paths cannot
//! drift apart.

use crate::simd::{self, Kernel, SpanClass};

/// Broadcast multiplier: `LO * b` repeats byte `b` in every lane.
pub const SWAR_LO: u64 = 0x0101_0101_0101_0101;
/// High-bit mask of every lane.
pub const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Lane mask of the zero bytes of `x`: bit `0x80 << 8k` is set iff
/// byte `k` of `x` is zero (the classic `(x - LO) & !x & HI`
/// zero-byte detector — exact, no false positives).
#[inline(always)]
pub fn zero_byte_mask(x: u64) -> u64 {
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// Lane mask of the bytes of `w` equal to the broadcast needle `bc`
/// (`bc = SWAR_LO * needle`).
#[inline(always)]
pub fn eq_mask(w: u64, bc: u64) -> u64 {
    zero_byte_mask(w ^ bc)
}

/// Position of the first occurrence of `needle` at or after `from`,
/// using the widest scanning kernel the CPU supports.
#[inline]
pub fn memchr(needle: u8, haystack: &[u8], from: usize) -> Option<usize> {
    match simd::kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch guarantees AVX2 was detected.
        Kernel::Avx2 => unsafe { simd::x86::memchr_avx2(needle, haystack, from) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => simd::x86::memchr_sse2(needle, haystack, from),
        _ => memchr_swar(needle, haystack, from),
    }
}

/// Position of the first occurrence of `a` or `b` at or after `from`,
/// using the widest scanning kernel the CPU supports.
#[inline]
pub fn memchr2(a: u8, b: u8, haystack: &[u8], from: usize) -> Option<usize> {
    match simd::kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch guarantees AVX2 was detected.
        Kernel::Avx2 => unsafe { simd::x86::memchr2_avx2(a, b, haystack, from) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => simd::x86::memchr2_sse2(a, b, haystack, from),
        _ => memchr2_swar(a, b, haystack, from),
    }
}

/// Position of the first occurrence of any needle at or after `from`.
/// `needles` must be non-empty; sets larger than 8 are rejected (the
/// DFA skip classes and format scanners never exceed 8 — use a bitmap
/// probe past that).
#[inline]
pub fn memchr_n(needles: &[u8], haystack: &[u8], from: usize) -> Option<usize> {
    assert!(
        !needles.is_empty() && needles.len() <= 8,
        "memchr_n needle set must have 1..=8 bytes"
    );
    match needles {
        [n] => memchr(*n, haystack, from),
        [a, b] => memchr2(*a, *b, haystack, from),
        _ => match simd::kernel() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch guarantees AVX2 was detected.
            Kernel::Avx2 => unsafe { simd::x86::memchr_n_avx2(needles, haystack, from) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => simd::x86::memchr_n_sse2(needles, haystack, from),
            _ => memchr_n_swar(needles, haystack, from),
        },
    }
}

/// SWAR `memchr`: 8 haystack bytes per iteration, scalar tail. The
/// portable fallback, also reachable via `ATGIS_NO_SIMD=1`.
pub fn memchr_swar(needle: u8, haystack: &[u8], from: usize) -> Option<usize> {
    let bc = SWAR_LO.wrapping_mul(needle as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8 bytes"));
        let hits = eq_mask(w, bc);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[i.min(haystack.len())..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// SWAR `memchr2`: 8 bytes per iteration, scalar tail.
pub fn memchr2_swar(a: u8, b: u8, haystack: &[u8], from: usize) -> Option<usize> {
    let bca = SWAR_LO.wrapping_mul(a as u64);
    let bcb = SWAR_LO.wrapping_mul(b as u64);
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8 bytes"));
        let hits = eq_mask(w, bca) | eq_mask(w, bcb);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[i.min(haystack.len())..]
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| i + p)
}

/// SWAR multi-needle first-match: one broadcast word per needle.
pub fn memchr_n_swar(needles: &[u8], haystack: &[u8], from: usize) -> Option<usize> {
    let mut bc = [0u64; 8];
    let n = needles.len().min(8);
    for (slot, &b) in bc.iter_mut().zip(needles) {
        *slot = SWAR_LO.wrapping_mul(b as u64);
    }
    let mut i = from;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8 bytes"));
        let mut hits = 0u64;
        for &b in &bc[..n] {
            hits |= eq_mask(w, b);
        }
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    haystack[i.min(haystack.len())..]
        .iter()
        .position(|&x| needles.contains(&x))
        .map(|p| i + p)
}

/// The WKT/JSON number-run class: digits plus `+ - . e E`.
pub const NUMBER_CLASS: SpanClass = SpanClass {
    ranges: [(b'0', b'9'), (1, 0)],
    extras: *b"+-.eE\0",
    n_extras: 5,
};

/// The bare-JSON-scalar class: number bytes plus lowercase letters
/// (`true` / `false` / `null`; `e` rides on the letter range).
pub const JSON_SCALAR_CLASS: SpanClass = SpanClass {
    ranges: [(b'0', b'9'), (b'a', b'z')],
    extras: *b"+-.E\0\0",
    n_extras: 4,
};

/// The ASCII-alphabetic class (`A-Z a-z`) — WKT keywords.
pub const ALPHA_CLASS: SpanClass = SpanClass {
    ranges: [(b'A', b'Z'), (b'a', b'z')],
    extras: [0; 6],
    n_extras: 0,
};

/// Length of the number-run prefix of `haystack[from..]`
/// (digits and `+ - . e E`), scanned a lane at a time.
#[inline]
pub fn number_span(haystack: &[u8], from: usize) -> usize {
    NUMBER_CLASS.span(haystack, from)
}

/// Length of the ASCII-alphabetic prefix of `haystack[from..]`,
/// scanned a lane at a time.
#[inline]
pub fn alpha_span(haystack: &[u8], from: usize) -> usize {
    ALPHA_CLASS.span(haystack, from)
}

/// Length of the bare-JSON-scalar prefix of `haystack[from..]`
/// (number bytes, lowercase letters, `E`), scanned a lane at a time.
#[inline]
pub fn json_scalar_span(haystack: &[u8], from: usize) -> usize {
    JSON_SCALAR_CLASS.span(haystack, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn memchr_finds_across_word_boundaries() {
        let hay = b"0123456789abcdef#0123456";
        for f in [memchr, memchr_swar] {
            assert_eq!(f(b'#', hay, 0), Some(16));
            assert_eq!(f(b'#', hay, 17), None);
            assert_eq!(f(b'0', hay, 1), Some(17));
            assert_eq!(f(b'x', b"", 0), None);
        }
    }

    #[test]
    fn memchr_n_finds_first_of_set() {
        let hay = b"abcdefghijklmnop{q\"r,";
        assert_eq!(memchr_n(b"\"{,", hay, 0), Some(16));
        assert_eq!(memchr_n(b"\",", hay, 0), Some(18));
        assert_eq!(memchr_n(b"z!", hay, 0), None);
        assert_eq!(memchr_n_swar(b"\"{,", hay, 0), Some(16));
    }

    #[test]
    fn number_span_stops_at_separators() {
        assert_eq!(number_span(b"12.5e-7,next", 0), 7);
        assert_eq!(number_span(b"abc", 0), 0);
        assert_eq!(number_span(b"", 0), 0);
        assert_eq!(json_scalar_span(b"true,false", 0), 4);
        assert_eq!(json_scalar_span(b"-1.25E9 ", 0), 7);
    }

    proptest! {
        #[test]
        fn memchr_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#\x00\xff".to_vec()), 0..80),
            from in 0usize..80,
        ) {
            let want = if from <= hay.len() {
                hay[from..].iter().position(|&b| b == b'#').map(|p| p + from)
            } else {
                None
            };
            prop_assert_eq!(memchr(b'#', &hay, from.min(hay.len())), want);
            prop_assert_eq!(memchr_swar(b'#', &hay, from.min(hay.len())), want);
        }

        #[test]
        fn memchr2_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#@\x00".to_vec()), 0..80),
            from in 0usize..80,
        ) {
            let from = from.min(hay.len());
            let want = hay[from..]
                .iter()
                .position(|&b| b == b'#' || b == b'@')
                .map(|p| p + from);
            prop_assert_eq!(memchr2(b'#', b'@', &hay, from), want);
            prop_assert_eq!(memchr2_swar(b'#', b'@', &hay, from), want);
        }

        #[test]
        fn memchr_n_agrees_with_std(
            hay in prop::collection::vec(prop::sample::select(b"ab#@\\\x00:,".to_vec()), 0..100),
            from in 0usize..100,
            nlen in 1usize..8,
        ) {
            let needles = &b"#@\\:,xy"[..nlen];
            let from = from.min(hay.len());
            let want = hay[from..]
                .iter()
                .position(|b| needles.contains(b))
                .map(|p| p + from);
            prop_assert_eq!(memchr_n(needles, &hay, from), want);
            prop_assert_eq!(memchr_n_swar(needles, &hay, from), want);
        }

        #[test]
        fn spans_agree_with_scalar(
            hay in prop::collection::vec(prop::sample::select(b"19.e-E+az,{ \x00\xff".to_vec()), 0..100),
            from in 0usize..100,
        ) {
            let from = from.min(hay.len());
            prop_assert_eq!(number_span(&hay, from), NUMBER_CLASS.span_scalar(&hay, from));
            prop_assert_eq!(
                json_scalar_span(&hay, from),
                JSON_SCALAR_CLASS.span_scalar(&hay, from)
            );
        }
    }
}
