//! Runtime-dispatched explicit SIMD kernels behind the scanning
//! primitives of [`crate::scan`] and the [`crate::dfa`] skip scanner.
//!
//! The paper's premise is that in-situ query speed is bounded by how
//! fast the structural scanner moves over raw bytes. This module owns
//! the `core::arch` implementations of the hot inner loops:
//!
//! * **SSE2** (16-byte lanes) — guaranteed by the x86_64 baseline, so
//!   the functions are safe and always callable on that architecture;
//! * **AVX2** (32-byte lanes) — selected at runtime via
//!   `is_x86_feature_detected!`, reached only through `unsafe`
//!   wrappers marked `#[target_feature(enable = "avx2")]`;
//! * **SWAR** (8-byte lanes, plain `u64`) — the portable fallback,
//!   kept verbatim in [`crate::scan`]; every SIMD kernel is
//!   bit-identical to it by the differential tests below.
//!
//! Detection happens **once per process** ([`kernel`] caches the probe
//! in an atomic) and honours the `ATGIS_NO_SIMD` environment knob,
//! which forces the SWAR fallback for differential testing and for
//! ruling SIMD in/out when debugging. Everything above this module —
//! `scan`, `dfa`, the format parsers, stream region cutting — is
//! dispatch-agnostic: callers invoke [`crate::scan::memchr`] &c. and
//! get whatever kernel the probe selected.
//!
//! The **fallback contract**: every kernel family (`memchr`,
//! `memchr2`, `memchr_n`, [`HitMasker`], [`SpanClass`] spans) returns
//! results byte-for-byte identical to the SWAR implementation, which
//! is itself bit-identical to the scalar loop, at every alignment,
//! offset and length. Tails shorter than a lane fall back to the
//! scalar path; loads are always unaligned and never read past the
//! slice.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which scanning kernel the one-time probe selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 32-byte `core::arch::x86_64` AVX2 lanes (runtime-detected).
    Avx2,
    /// 16-byte SSE2 lanes (baseline on x86_64).
    Sse2,
    /// Portable 8-byte SIMD-within-a-register fallback.
    Swar,
}

impl Kernel {
    /// Stable lowercase name (used by benches and the dispatcher
    /// test).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Swar => "swar",
        }
    }
}

/// The selected kernel, probed once per process and cached.
///
/// `ATGIS_NO_SIMD` (set to anything but `0` or the empty string)
/// forces [`Kernel::Swar`]; otherwise x86_64 gets AVX2 when the CPU
/// reports it and SSE2 (the architectural baseline) when not. Every
/// other architecture scans with the portable SWAR kernels.
#[inline]
pub fn kernel() -> Kernel {
    static CACHE: AtomicU8 = AtomicU8::new(0);
    match CACHE.load(Ordering::Relaxed) {
        1 => Kernel::Avx2,
        2 => Kernel::Sse2,
        3 => Kernel::Swar,
        _ => {
            let k = probe();
            CACHE.store(
                match k {
                    Kernel::Avx2 => 1,
                    Kernel::Sse2 => 2,
                    Kernel::Swar => 3,
                },
                Ordering::Relaxed,
            );
            k
        }
    }
}

/// The uncached CPU/environment probe behind [`kernel`].
fn probe() -> Kernel {
    if no_simd_requested() {
        return Kernel::Swar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        Kernel::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    Kernel::Swar
}

/// True when the `ATGIS_NO_SIMD` knob asks for the SWAR fallback.
pub fn no_simd_requested() -> bool {
    std::env::var_os("ATGIS_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0")
}

/// A multi-needle hit-mask scanner over fixed-width lanes: `mask`
/// reports which of the `WIDTH` bytes at a pointer match any needle,
/// and the caller consumes hits via `index_of` + clear-lowest-bit.
/// This is the abstraction [`crate::dfa`] runs its skip scanner
/// through: the generic scan loop is written once and monomorphised
/// per kernel (the AVX2 instantiation lives inside a
/// `#[target_feature]` wrapper so the whole loop body gets AVX2
/// codegen).
pub trait HitMasker: Copy {
    /// Lane width in bytes (8 / 16 / 32).
    const WIDTH: usize;

    /// Hit mask of the `WIDTH` bytes at `ptr`; zero means no needle
    /// occurs. Bits are consumed with `m & (m - 1)` and located with
    /// [`Self::index_of`].
    ///
    /// # Safety
    /// `ptr` must be valid for `WIDTH` readable bytes, and for the
    /// AVX2 masker the CPU must support AVX2.
    unsafe fn mask(&self, ptr: *const u8) -> u64;

    /// Byte offset (within the lane) of the lowest set hit in `m`.
    fn index_of(m: u64) -> usize;
}

/// Portable SWAR masker: one broadcast word per needle, hits reported
/// as `0x80`-per-lane bits.
#[derive(Clone, Copy)]
pub struct SwarMasker<const N: usize> {
    bc: [u64; N],
}

impl<const N: usize> SwarMasker<N> {
    /// Broadcasts the needle bytes (padding entries may repeat).
    #[inline(always)]
    pub fn new(needles: &[u8; N]) -> Self {
        let mut bc = [0u64; N];
        for (slot, &n) in bc.iter_mut().zip(needles) {
            *slot = crate::scan::SWAR_LO.wrapping_mul(n as u64);
        }
        SwarMasker { bc }
    }
}

impl<const N: usize> HitMasker for SwarMasker<N> {
    const WIDTH: usize = 8;

    #[inline(always)]
    unsafe fn mask(&self, ptr: *const u8) -> u64 {
        // SAFETY: caller guarantees 8 readable bytes.
        let w = u64::from_le(unsafe { ptr.cast::<u64>().read_unaligned() });
        let mut m = 0u64;
        for &bc in &self.bc {
            m |= crate::scan::eq_mask(w, bc);
        }
        m
    }

    #[inline(always)]
    fn index_of(m: u64) -> usize {
        (m.trailing_zeros() >> 3) as usize
    }
}

/// A byte class for span scanning: up to two inclusive ranges plus a
/// small extra-needle set. Covers the format lexeme shapes (WKT/JSON
/// number runs, bare JSON scalars) with one vector comparison per
/// range/extra per lane.
#[derive(Debug, Clone, Copy)]
pub struct SpanClass {
    /// Inclusive byte ranges; a slot with `lo > hi` is unused.
    pub ranges: [(u8, u8); 2],
    /// Extra single-byte members (`extras[..n_extras]`).
    pub extras: [u8; 6],
    /// Number of live entries in `extras`.
    pub n_extras: u8,
}

impl SpanClass {
    /// Scalar membership test — the reference the SIMD span kernels
    /// are pinned against.
    #[inline(always)]
    pub fn contains(&self, b: u8) -> bool {
        for &(lo, hi) in &self.ranges {
            if lo <= b && b <= hi {
                return true;
            }
        }
        self.extras[..self.n_extras as usize].contains(&b)
    }

    /// Length of the prefix of `hay[from..]` whose bytes are all class
    /// members, using the probed kernel.
    ///
    /// Typical spans (a WKT/JSON number, a format keyword) end within
    /// one lane, where the vector kernels lose: they re-broadcast the
    /// class constants on every call and the run is over before that
    /// setup amortises. The first lane is therefore scanned scalar,
    /// and the vector kernels take over only when the run is still
    /// going — long coordinate lists and text runs keep the SIMD win.
    #[inline]
    pub fn span(&self, hay: &[u8], from: usize) -> usize {
        let len = hay.len();
        let start = from.min(len);
        let short_end = (start + 16).min(len);
        let mut i = start;
        while i < short_end {
            if !self.contains(hay[i]) {
                return i - start;
            }
            i += 1;
        }
        if i == len {
            return i - start;
        }
        i - start
            + match kernel() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: dispatch guarantees AVX2 was detected.
                Kernel::Avx2 => unsafe { x86::span_avx2(self, hay, i) },
                #[cfg(target_arch = "x86_64")]
                Kernel::Sse2 => x86::span_sse2(self, hay, i),
                _ => self.span_scalar(hay, i),
            }
    }

    /// The scalar span loop (SWAR fallback — a 64-bit class test does
    /// not pay for ranges, so the fallback is the plain byte loop the
    /// format parsers used before this module existed).
    #[inline]
    pub fn span_scalar(&self, hay: &[u8], from: usize) -> usize {
        hay[from.min(hay.len())..]
            .iter()
            .take_while(|&&b| self.contains(b))
            .count()
    }
}

/// The x86_64 kernels. SSE2 functions are safe (baseline feature);
/// AVX2 functions are `unsafe fn` + `#[target_feature]` and must only
/// be called after runtime detection — [`kernel`] is the only
/// sanctioned gate.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::{HitMasker, SpanClass};
    use core::arch::x86_64::*;

    /// SSE2 `memchr`: 16 bytes per iteration, scalar tail.
    ///
    /// All `unsafe` blocks in the SSE2 kernels cover either bounded
    /// unaligned loads or SSE2 intrinsics, which are part of the
    /// x86_64 architectural baseline this module is gated on.
    #[inline]
    pub fn memchr_sse2(needle: u8, hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        // SAFETY: SSE2 is baseline on x86_64.
        let nv = unsafe { _mm_set1_epi8(needle as i8) };
        let mut i = from;
        while i + 16 <= len {
            // SAFETY: loop condition guarantees 16 readable bytes.
            let m = unsafe {
                let v = _mm_loadu_si128(hay.as_ptr().add(i).cast());
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, nv)) as u32
            };
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i.min(len)..]
            .iter()
            .position(|&b| b == needle)
            .map(|p| i + p)
    }

    /// SSE2 `memchr2`.
    #[inline]
    pub fn memchr2_sse2(a: u8, b: u8, hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        // SAFETY: SSE2 is baseline on x86_64.
        let (av, bv) = unsafe { (_mm_set1_epi8(a as i8), _mm_set1_epi8(b as i8)) };
        let mut i = from;
        while i + 16 <= len {
            // SAFETY: loop condition guarantees 16 readable bytes.
            let m = unsafe {
                let v = _mm_loadu_si128(hay.as_ptr().add(i).cast());
                let hits = _mm_or_si128(_mm_cmpeq_epi8(v, av), _mm_cmpeq_epi8(v, bv));
                _mm_movemask_epi8(hits) as u32
            };
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i.min(len)..]
            .iter()
            .position(|&x| x == a || x == b)
            .map(|p| i + p)
    }

    /// SSE2 multi-needle first-match (`needles` must be non-empty and
    /// short — the caller caps it at 8).
    #[inline]
    pub fn memchr_n_sse2(needles: &[u8], hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        // SAFETY: SSE2 is baseline on x86_64.
        let mut vecs = [unsafe { _mm_setzero_si128() }; 8];
        let n = needles.len().min(8);
        for (slot, &b) in vecs.iter_mut().zip(needles) {
            // SAFETY: SSE2 is baseline on x86_64.
            *slot = unsafe { _mm_set1_epi8(b as i8) };
        }
        let mut i = from;
        while i + 16 <= len {
            // SAFETY: loop condition guarantees 16 readable bytes.
            let m = unsafe {
                let v = _mm_loadu_si128(hay.as_ptr().add(i).cast());
                let mut m = 0u32;
                for nv in &vecs[..n] {
                    m |= _mm_movemask_epi8(_mm_cmpeq_epi8(v, *nv)) as u32;
                }
                m
            };
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i.min(len)..]
            .iter()
            .position(|&x| needles.contains(&x))
            .map(|p| i + p)
    }

    /// AVX2 `memchr`: 32 bytes per iteration, SSE2 step + scalar tail.
    ///
    /// # Safety
    /// The CPU must support AVX2 (checked by [`super::kernel`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn memchr_avx2(needle: u8, hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        let nv = _mm256_set1_epi8(needle as i8);
        let mut i = from;
        while i + 32 <= len {
            // SAFETY: loop condition guarantees 32 readable bytes.
            let v = unsafe { _mm256_loadu_si256(hay.as_ptr().add(i).cast()) };
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, nv)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        memchr_sse2(needle, hay, i)
    }

    /// AVX2 `memchr2`.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn memchr2_avx2(a: u8, b: u8, hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        let av = _mm256_set1_epi8(a as i8);
        let bv = _mm256_set1_epi8(b as i8);
        let mut i = from;
        while i + 32 <= len {
            // SAFETY: loop condition guarantees 32 readable bytes.
            let v = unsafe { _mm256_loadu_si256(hay.as_ptr().add(i).cast()) };
            let hits = _mm256_or_si256(_mm256_cmpeq_epi8(v, av), _mm256_cmpeq_epi8(v, bv));
            let m = _mm256_movemask_epi8(hits) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        memchr2_sse2(a, b, hay, i)
    }

    /// AVX2 multi-needle first-match.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn memchr_n_avx2(needles: &[u8], hay: &[u8], from: usize) -> Option<usize> {
        let len = hay.len();
        let mut vecs = [_mm256_setzero_si256(); 8];
        let n = needles.len().min(8);
        for (slot, &b) in vecs.iter_mut().zip(needles) {
            *slot = _mm256_set1_epi8(b as i8);
        }
        let mut i = from;
        while i + 32 <= len {
            // SAFETY: loop condition guarantees 32 readable bytes.
            let v = unsafe { _mm256_loadu_si256(hay.as_ptr().add(i).cast()) };
            let mut m = 0u32;
            for nv in &vecs[..n] {
                m |= _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, *nv)) as u32;
            }
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        memchr_n_sse2(needles, hay, i)
    }

    /// SSE2 masker for the DFA skip scanner: one broadcast vector per
    /// needle, byte-granular movemask hits.
    #[derive(Clone, Copy)]
    pub struct Sse2Masker<const N: usize> {
        v: [__m128i; N],
    }

    impl<const N: usize> Sse2Masker<N> {
        /// Broadcasts the needle bytes (padding entries may repeat).
        #[inline(always)]
        pub fn new(needles: &[u8; N]) -> Self {
            // SAFETY: SSE2 is baseline on x86_64.
            let mut v = [unsafe { _mm_setzero_si128() }; N];
            for (slot, &b) in v.iter_mut().zip(needles) {
                // SAFETY: SSE2 is baseline on x86_64.
                *slot = unsafe { _mm_set1_epi8(b as i8) };
            }
            Sse2Masker { v }
        }
    }

    impl<const N: usize> HitMasker for Sse2Masker<N> {
        const WIDTH: usize = 16;

        #[inline(always)]
        unsafe fn mask(&self, ptr: *const u8) -> u64 {
            // SAFETY: caller guarantees 16 readable bytes.
            let x = unsafe { _mm_loadu_si128(ptr.cast()) };
            let mut m = 0u32;
            for nv in &self.v {
                m |= _mm_movemask_epi8(_mm_cmpeq_epi8(x, *nv)) as u32;
            }
            m as u64
        }

        #[inline(always)]
        fn index_of(m: u64) -> usize {
            m.trailing_zeros() as usize
        }
    }

    /// AVX2 masker. Constructed and consumed only inside
    /// `#[target_feature(enable = "avx2")]` contexts (the dfa wrapper),
    /// where the `#[inline(always)]` bodies inline and pick up AVX2
    /// codegen.
    #[derive(Clone, Copy)]
    pub struct Avx2Masker<const N: usize> {
        v: [__m256i; N],
    }

    impl<const N: usize> Avx2Masker<N> {
        /// Broadcasts the needle bytes.
        ///
        /// # Safety
        /// The CPU must support AVX2.
        #[inline(always)]
        pub unsafe fn new(needles: &[u8; N]) -> Self {
            let mut v = [unsafe { _mm256_setzero_si256() }; N];
            for (slot, &b) in v.iter_mut().zip(needles) {
                // SAFETY: caller guarantees AVX2.
                *slot = unsafe { _mm256_set1_epi8(b as i8) };
            }
            Avx2Masker { v }
        }
    }

    impl<const N: usize> HitMasker for Avx2Masker<N> {
        const WIDTH: usize = 32;

        #[inline(always)]
        unsafe fn mask(&self, ptr: *const u8) -> u64 {
            // SAFETY: caller guarantees 32 readable bytes and AVX2.
            unsafe {
                let x = _mm256_loadu_si256(ptr.cast());
                let mut m = 0u32;
                for nv in &self.v {
                    m |= _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, *nv)) as u32;
                }
                m as u64
            }
        }

        #[inline(always)]
        fn index_of(m: u64) -> usize {
            m.trailing_zeros() as usize
        }
    }

    /// 16-byte membership mask for a [`SpanClass`]: signed range
    /// compares are exact for ASCII classes because every class byte
    /// is `< 0x80`, so bytes `>= 0x80` (negative as `i8`) fail the
    /// lower-bound compare.
    #[inline(always)]
    fn class_mask_sse2(c: &SpanClass, v: __m128i) -> u32 {
        // SAFETY: SSE2 is baseline on x86_64; no memory access.
        unsafe {
            let mut m = _mm_setzero_si128();
            for &(lo, hi) in &c.ranges {
                if lo > hi {
                    continue;
                }
                let ge = _mm_cmpgt_epi8(v, _mm_set1_epi8(lo as i8 - 1));
                let le = _mm_cmpgt_epi8(_mm_set1_epi8(hi as i8 + 1), v);
                m = _mm_or_si128(m, _mm_and_si128(ge, le));
            }
            for &e in &c.extras[..c.n_extras as usize] {
                m = _mm_or_si128(m, _mm_cmpeq_epi8(v, _mm_set1_epi8(e as i8)));
            }
            _mm_movemask_epi8(m) as u32
        }
    }

    /// SSE2 span: length of the all-members prefix of `hay[from..]`.
    #[inline]
    pub fn span_sse2(c: &SpanClass, hay: &[u8], from: usize) -> usize {
        let len = hay.len();
        let mut i = from;
        while i + 16 <= len {
            // SAFETY: loop condition guarantees 16 readable bytes.
            let v = unsafe { _mm_loadu_si128(hay.as_ptr().add(i).cast()) };
            let m = class_mask_sse2(c, v);
            if m != 0xFFFF {
                return i - from + (!m).trailing_zeros() as usize;
            }
            i += 16;
        }
        i - from + c.span_scalar(hay, i)
    }

    /// AVX2 span.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn span_avx2(c: &SpanClass, hay: &[u8], from: usize) -> usize {
        let len = hay.len();
        let mut i = from;
        while i + 32 <= len {
            // SAFETY: loop condition guarantees 32 readable bytes.
            let v = unsafe { _mm256_loadu_si256(hay.as_ptr().add(i).cast()) };
            let mut m = _mm256_setzero_si256();
            for &(lo, hi) in &c.ranges {
                if lo > hi {
                    continue;
                }
                let ge = _mm256_cmpgt_epi8(v, _mm256_set1_epi8(lo as i8 - 1));
                let le = _mm256_cmpgt_epi8(_mm256_set1_epi8(hi as i8 + 1), v);
                m = _mm256_or_si256(m, _mm256_and_si256(ge, le));
            }
            for &e in &c.extras[..c.n_extras as usize] {
                m = _mm256_or_si256(m, _mm256_cmpeq_epi8(v, _mm256_set1_epi8(e as i8)));
            }
            let bits = _mm256_movemask_epi8(m) as u32;
            if bits != u32::MAX {
                return i - from + (!bits).trailing_zeros() as usize;
            }
            i += 32;
        }
        i - from + span_sse2(c, hay, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatcher_picks_expected_kernel_for_this_cpu() {
        let k = kernel();
        if no_simd_requested() {
            assert_eq!(
                k,
                Kernel::Swar,
                "ATGIS_NO_SIMD must force the SWAR fallback"
            );
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let want = if std::arch::is_x86_feature_detected!("avx2") {
                Kernel::Avx2
            } else {
                Kernel::Sse2
            };
            assert_eq!(k, want, "x86_64 must pick the widest detected lane");
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(k, Kernel::Swar);
    }

    #[test]
    fn kernel_probe_is_cached_and_stable() {
        assert_eq!(kernel(), kernel());
        assert!(!kernel().name().is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    mod x86_differential {
        use super::super::x86::*;
        use super::super::{HitMasker, SpanClass, SwarMasker};

        /// Exhaustive-ish alignment harness: a page-backed buffer is
        /// sliced at every offset 0..33 and every length 0..97, so
        /// needles land on lane boundaries, straddle the 16/32-byte
        /// edges, and fall in sub-lane tails.
        fn alignments(f: impl Fn(&[u8])) {
            let mut buf = vec![0u8; 256];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = b"ab#@\\\"0123, xyz\x00\xff"[i % 17];
            }
            for off in 0..33 {
                for len in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 96] {
                    f(&buf[off..off + len]);
                }
            }
        }

        #[test]
        fn memchr_kernels_agree_with_scalar_at_every_alignment() {
            alignments(|hay| {
                for from in [0, 1, hay.len() / 2, hay.len()] {
                    for needle in [b'#', b'a', b'\x00', b'\xff', b'Q'] {
                        let want = hay[from.min(hay.len())..]
                            .iter()
                            .position(|&b| b == needle)
                            .map(|p| p + from);
                        assert_eq!(memchr_sse2(needle, hay, from), want);
                        if std::arch::is_x86_feature_detected!("avx2") {
                            // SAFETY: feature checked above.
                            assert_eq!(unsafe { memchr_avx2(needle, hay, from) }, want);
                        }
                    }
                }
            });
        }

        #[test]
        fn memchr2_kernels_agree_with_scalar_at_every_alignment() {
            alignments(|hay| {
                for from in [0, 1, hay.len() / 2] {
                    let want = hay[from.min(hay.len())..]
                        .iter()
                        .position(|&b| b == b'#' || b == b'@')
                        .map(|p| p + from);
                    assert_eq!(memchr2_sse2(b'#', b'@', hay, from), want);
                    if std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: feature checked above.
                        assert_eq!(unsafe { memchr2_avx2(b'#', b'@', hay, from) }, want);
                    }
                }
            });
        }

        #[test]
        fn memchr_n_kernels_agree_with_scalar_at_every_alignment() {
            let needle_sets: &[&[u8]] = &[b"#", b"#@", b"#@\\", b"\"\\{}[],:", b"QZ"];
            alignments(|hay| {
                for needles in needle_sets {
                    let want = hay.iter().position(|b| needles.contains(b));
                    assert_eq!(memchr_n_sse2(needles, hay, 0), want);
                    if std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: feature checked above.
                        assert_eq!(unsafe { memchr_n_avx2(needles, hay, 0) }, want);
                    }
                }
            });
        }

        #[test]
        fn hit_maskers_agree_across_kernels() {
            let needles8 = *b"\"\\{}[],:";
            let needles2 = *b"\"\\";
            let mut buf = [0u8; 128];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = b"a\"b\\c{}[],:x \x80\xff"[i % 15];
            }
            let swar2 = SwarMasker::new(&needles2);
            let swar8 = SwarMasker::new(&needles8);
            let sse2 = Sse2Masker::new(&needles2);
            let sse8 = Sse2Masker::new(&needles8);
            for off in 0..(buf.len() - 32) {
                let p = buf[off..].as_ptr();
                // Expand each kernel's mask to a per-byte boolean over
                // its own width and compare against the scalar truth.
                for w in 0..8 {
                    // SAFETY: off + 32 <= buf.len() bounds all widths.
                    let m2 = unsafe { swar2.mask(p) };
                    let m8 = unsafe { swar8.mask(p) };
                    let hit2 = m2 >> (w * 8) & 0x80 != 0;
                    let hit8 = m8 >> (w * 8) & 0x80 != 0;
                    assert_eq!(hit2, needles2.contains(&buf[off + w]));
                    assert_eq!(hit8, needles8.contains(&buf[off + w]));
                }
                for w in 0..16 {
                    // SAFETY: as above.
                    let m2 = unsafe { sse2.mask(p) };
                    let m8 = unsafe { sse8.mask(p) };
                    assert_eq!(m2 >> w & 1 != 0, needles2.contains(&buf[off + w]));
                    assert_eq!(m8 >> w & 1 != 0, needles8.contains(&buf[off + w]));
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: feature checked; off + 32 bounded.
                    let (a2, a8) = unsafe {
                        let a2 = Avx2Masker::new(&needles2);
                        let a8 = Avx2Masker::new(&needles8);
                        (a2.mask(p), a8.mask(p))
                    };
                    for w in 0..32 {
                        assert_eq!(a2 >> w & 1 != 0, needles2.contains(&buf[off + w]));
                        assert_eq!(a8 >> w & 1 != 0, needles8.contains(&buf[off + w]));
                    }
                }
            }
        }

        #[test]
        fn span_kernels_agree_with_scalar_at_every_alignment() {
            let number = SpanClass {
                ranges: [(b'0', b'9'), (1, 0)],
                extras: *b"+-.eE\0",
                n_extras: 5,
            };
            let scalar = SpanClass {
                ranges: [(b'0', b'9'), (b'a', b'z')],
                extras: *b"+-.E\0\0",
                n_extras: 4,
            };
            let mut buf = vec![0u8; 256];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = b"12.5e-7,true nul\xff"[i % 17];
            }
            for class in [&number, &scalar] {
                for off in 0..33 {
                    for len in [0, 1, 7, 15, 16, 17, 31, 32, 33, 64, 96] {
                        let hay = &buf[off..off + len];
                        for from in [0, 1, len / 2, len] {
                            let want = class.span_scalar(hay, from);
                            assert_eq!(span_sse2(class, hay, from), want);
                            if std::arch::is_x86_feature_detected!("avx2") {
                                // SAFETY: feature checked above.
                                assert_eq!(unsafe { span_avx2(class, hay, from) }, want);
                            }
                        }
                    }
                }
            }
        }
    }
}
