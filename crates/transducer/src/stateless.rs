//! Stateless transducers (§3.3).
//!
//! "A stateless transducer is one for which the set of states Q is a
//! singleton ⊥ … Each input can result in zero or more outputs, giving
//! it the expressive power of both map and filter." Stateless
//! transducers have a trivial associative form: no state to speculate
//! over, so a fragment is just the concatenated output.

/// A stateless transducer: a mapping function from one input symbol to
/// zero or more output symbols (the paper's `p : Σ → Γ*`).
pub struct StatelessTransducer<I, O, F>
where
    F: Fn(&I, &mut Vec<O>),
{
    map: F,
    _marker: std::marker::PhantomData<fn(&I) -> O>,
}

impl<I, O, F> StatelessTransducer<I, O, F>
where
    F: Fn(&I, &mut Vec<O>),
{
    /// Wraps a mapping function. The function pushes any number of
    /// outputs per input (0 = filter out, 1 = map, >1 = flat-map).
    pub fn new(map: F) -> Self {
        StatelessTransducer {
            map,
            _marker: std::marker::PhantomData,
        }
    }

    /// Processes one symbol into `out`.
    #[inline]
    pub fn process(&self, sym: &I, out: &mut Vec<O>) {
        (self.map)(sym, out);
    }

    /// Builds the fragment (= output vector) for a block.
    pub fn fragment(&self, block: &[I]) -> Vec<O> {
        let mut out = Vec::new();
        for s in block {
            self.process(s, &mut out);
        }
        out
    }

    /// Runs associatively over `blocks`-way split input; by
    /// statelessness this trivially equals the sequential run.
    pub fn run_associative(&self, input: &[I], blocks: usize) -> Vec<O> {
        let chunk = input.len().div_ceil(blocks.max(1)).max(1);
        crate::merge::merge_all(input.chunks(chunk).map(|b| self.fragment(b)))
    }
}

/// Convenience constructor for a pure map.
pub fn map_transducer<I, O: Clone>(
    f: impl Fn(&I) -> O,
) -> StatelessTransducer<I, O, impl Fn(&I, &mut Vec<O>)> {
    StatelessTransducer::new(move |i, out| out.push(f(i)))
}

/// Convenience constructor for a filter.
pub fn filter_transducer<I: Clone>(
    pred: impl Fn(&I) -> bool,
) -> StatelessTransducer<I, I, impl Fn(&I, &mut Vec<I>)> {
    StatelessTransducer::new(move |i, out| {
        if pred(i) {
            out.push(i.clone());
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_semantics() {
        let t = map_transducer(|x: &i32| x * 2);
        assert_eq!(t.fragment(&[1, 2, 3]), vec![2, 4, 6]);
    }

    #[test]
    fn filter_semantics() {
        let t = filter_transducer(|x: &i32| x % 2 == 0);
        assert_eq!(t.fragment(&[1, 2, 3, 4]), vec![2, 4]);
    }

    #[test]
    fn flat_map_semantics() {
        // The paper's point-parser example: one offset expands to a
        // coordinate pair.
        let t = StatelessTransducer::new(|x: &i32, out: &mut Vec<i32>| {
            out.push(*x);
            out.push(x + 100);
        });
        assert_eq!(t.fragment(&[1, 2]), vec![1, 101, 2, 102]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let t = map_transducer(|x: &i32| *x);
        assert!(t.fragment(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn associative_equals_sequential(
            input in prop::collection::vec(-1000i32..1000, 0..200),
            blocks in 1usize..16,
        ) {
            let t = StatelessTransducer::new(|x: &i32, out: &mut Vec<i32>| {
                if x % 3 != 0 { out.push(x * x) }
            });
            let seq = t.fragment(&input);
            let par = t.run_associative(&input, blocks);
            prop_assert_eq!(seq, par);
        }
    }
}
