//! A `QuerySession` answering a mixed stream of concurrent queries —
//! the multi-tenant serving shape the shared-scan batch layer exists
//! for. Each arriving "tick" of traffic is a batch: one structural
//! parse pass serves every query in it, join-class queries share the
//! session's cached partition index, and results are bit-identical to
//! running each query alone.
//!
//! ```sh
//! cargo run --release --example batch_server
//! ```

use atgis::{Dataset, Engine, ExecOptions, Query, QuerySession};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;

/// A deterministic little "traffic generator": tenant t asks about
/// its own region; every few ticks someone runs a join.
fn traffic_tick(tick: u64, objects: u64) -> Vec<Query> {
    let mut batch = Vec::new();
    for tenant in 0..6u64 {
        let x = -9.0 + ((tick * 7 + tenant * 5) % 14) as f64;
        let y = 42.0 + ((tick * 3 + tenant * 11) % 14) as f64;
        let region = Mbr::new(x, y, x + 4.0, y + 4.0);
        if (tick + tenant).is_multiple_of(3) {
            batch.push(Query::aggregation(region));
        } else {
            batch.push(Query::containment(region));
        }
    }
    if tick.is_multiple_of(2) {
        batch.push(Query::join(objects / 4));
    }
    if tick.is_multiple_of(3) {
        batch.push(Query::combined(objects / 4, 10.0, 1.0e7));
    }
    batch
}

fn main() {
    let objects = 10_000u64;
    let dataset = Dataset::from_bytes(
        write_geojson(&OsmGenerator::new(41).generate(objects as usize)),
        Format::GeoJson,
    );
    let engine = Engine::builder()
        .threads(0)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();
    println!(
        "serving {} objects ({} KB GeoJSON) on {} thread(s)",
        objects,
        dataset.len() / 1024,
        engine.threads()
    );

    // The session pins the dataset and keeps the partition-index
    // cache warm across batches.
    let session = QuerySession::new(engine, dataset);

    for tick in 0..6 {
        let batch = traffic_tick(tick, objects);
        let out = session
            .run(&batch, &ExecOptions::new().timed())
            .expect("batch execution");
        let stats = out.batch.clone().expect("timed run reports stats");
        let results = out.collapse().expect("batch execution");
        let matches: usize = results.iter().map(|r| r.matches().len()).sum();
        let pairs: usize = results.iter().map(|r| r.joined().len()).sum();
        println!(
            "tick {tick}: {} queries in {} parse pass(es) \
             (amortisation {:.1}x, scan {:.1?}) -> {} matches, {} join pairs, \
             {} cached index(es)",
            stats.queries,
            stats.scan_passes,
            stats.amortisation_ratio(),
            stats.shared_scan.total(),
            matches,
            pairs,
            session.cached_indexes(),
        );
    }

    // Spot-check the serving contract: batched answers equal solo
    // execution on the session's engine.
    let probe = traffic_tick(1, objects);
    let batched = session
        .run(&probe, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("batch");
    for (q, want) in probe.iter().zip(&batched) {
        let solo = session
            .engine()
            .run(
                std::slice::from_ref(q),
                session.dataset(),
                &ExecOptions::new(),
            )
            .and_then(|o| o.into_single())
            .expect("solo");
        assert_eq!(&solo, want, "batch answers must equal solo execution");
    }
    println!("verified: batched results identical to per-query execution");
}
