//! Format tour: the same dataset serialised as GeoJSON, WKT and OSM
//! XML, queried in both execution modes — the paper's claim that
//! AT-GIS "operates efficiently on multiple data formats" (§5.3) with
//! FAT handling arbitrary splits and PAT exploiting format markers.
//!
//! ```sh
//! cargo run --release --example format_tour
//! ```

use atgis::{Dataset, Engine, ExecOptions, Query};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;

fn main() {
    let objects = OsmGenerator::new(3).generate(5_000);
    let datasets = [
        (
            "GeoJSON",
            Dataset::from_bytes(write_geojson(&objects), Format::GeoJson),
        ),
        ("WKT", Dataset::from_bytes(write_wkt(&objects), Format::Wkt)),
        (
            "OSM XML",
            Dataset::from_bytes(write_osm_xml(&objects), Format::OsmXml),
        ),
    ];
    let region = Mbr::new(-10.0, 40.0, 0.0, 50.0);
    let query = Query::containment(region);

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "format", "size(KB)", "PAT (MB/s)", "FAT (MB/s)", "matches"
    );
    for (name, ds) in &datasets {
        let mut row = Vec::new();
        let mut matches = 0;
        for mode in [Mode::Pat, Mode::Fat] {
            let engine = Engine::builder().threads(4).mode(mode).build();
            let started = std::time::Instant::now();
            let result = engine
                .run(std::slice::from_ref(&query), ds, &ExecOptions::new())
                .expect("query failed")
                .into_single()
                .expect("query failed");
            let elapsed = started.elapsed();
            matches = result.matches().len();
            row.push(ds.len() as f64 / 1e6 / elapsed.as_secs_f64().max(1e-9));
        }
        println!(
            "{:<8} {:>10} {:>12.1} {:>12.1} {:>10}",
            name,
            ds.len() / 1024,
            row[0],
            row[1],
            matches
        );
    }

    // The two modes must agree exactly — associativity is correctness,
    // not approximation.
    let g = &datasets[0].1;
    let pat = Engine::builder().mode(Mode::Pat).threads(3).build();
    let fat = Engine::builder().mode(Mode::Fat).threads(3).build();
    let opts = ExecOptions::new();
    let a = pat
        .run(std::slice::from_ref(&query), g, &opts)
        .and_then(|o| o.into_single())
        .expect("pat");
    let b = fat
        .run(std::slice::from_ref(&query), g, &opts)
        .and_then(|o| o.into_single())
        .expect("fat");
    assert_eq!(a.matches(), b.matches());
    println!(
        "\nPAT and FAT agree on {} matches — speculation is exact.",
        a.matches().len()
    );
}
