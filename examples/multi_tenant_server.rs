//! A `QueryScheduler` serving many tenants over several datasets —
//! the serving shape the scheduling layer exists for. Tenants
//! repeatedly ask for overlapping dashboards, so each traffic tick is
//! a duplicate-heavy multi-dataset batch: identical predicates share
//! one execution (dedup), repeated single-pass traffic is answered
//! from the cross-batch aggregate cache without any scan, scan-heavy
//! outliers are admitted into their own waves, and results stay
//! bit-identical to running every query alone.
//!
//! ```sh
//! cargo run --release --example multi_tenant_server
//! ```

use atgis::{Dataset, Engine, ExecOptions, Query, QueryScheduler, ScheduledQuery};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;

/// Deterministic tenant traffic: 8 tenants spread over 2 datasets,
/// asking for a handful of *shared* dashboard tiles (that's what
/// makes dedup and the aggregate cache pay) plus the occasional join.
fn traffic_tick(tick: u64, ids: &[atgis::DatasetId], objects: u64) -> Vec<ScheduledQuery> {
    let tiles = [
        Mbr::new(-6.0, 44.0, 4.0, 56.0),
        Mbr::new(-2.0, 48.0, 2.0, 52.0),
        Mbr::new(0.0, 50.0, 4.0, 54.0),
    ];
    let mut batch = Vec::new();
    for tenant in 0..8u64 {
        let dataset = ids[(tenant % ids.len() as u64) as usize];
        let tile = tiles[((tick + tenant) % 3) as usize];
        if tenant.is_multiple_of(3) {
            batch.push(ScheduledQuery::new(dataset, Query::aggregation(tile)));
        } else {
            batch.push(ScheduledQuery::new(dataset, Query::containment(tile)));
        }
    }
    if tick.is_multiple_of(2) {
        // Two tenants submit the *same* join: one execution, two
        // answers.
        batch.push(ScheduledQuery::new(ids[0], Query::join(objects / 4)));
        batch.push(ScheduledQuery::new(ids[0], Query::join(objects / 4)));
    }
    batch
}

fn main() {
    let objects = 8_000u64;
    let engine = Engine::builder()
        .threads(0)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();
    let scheduler = QueryScheduler::new(engine.clone());

    // Two served datasets ("tenant shards"), registered up front.
    let make = |seed: u64, n: u64| {
        Dataset::from_bytes(
            write_geojson(&OsmGenerator::new(seed).generate(n as usize)),
            Format::GeoJson,
        )
    };
    let mut shards = [make(51, objects), make(52, objects / 2)];
    let ids = [
        scheduler.register(shards[0].clone()),
        scheduler.register(shards[1].clone()),
    ];
    println!(
        "serving 2 shards ({} objects) on {} thread(s)",
        objects + objects / 2,
        engine.threads()
    );

    for tick in 0..6 {
        let batch = traffic_tick(tick, &ids, objects);
        let out = scheduler
            .run_multi(&batch, &ExecOptions::new().timed())
            .expect("scheduled batch");
        let stats = out.scheduler.clone().expect("timed run reports stats");
        let results = out.collapse().expect("scheduled batch");
        let matches: usize = results.iter().map(|r| r.matches().len()).sum();
        println!(
            "tick {tick}: {} submissions -> {} executed ({} dedup, {} cached) in \
             {} wave(s) / {} parse pass(es); p50 {:.1?} p95 {:.1?}; {} matches",
            stats.queries,
            stats.unique_queries,
            stats.dedup_hits,
            stats.cache_hits,
            stats.waves.len(),
            stats.scan_passes,
            stats.latency_percentile(50.0),
            stats.latency_percentile(95.0),
            matches,
        );
    }
    let cache = scheduler.cache_stats();
    println!(
        "aggregate cache: {} entries, {} hits / {} misses, {} evictions",
        cache.entries, cache.hits, cache.misses, cache.evictions
    );

    // Mutating a shard bumps its generation: the cache can never
    // serve the old bytes again.
    shards[1] = make(53, objects / 2);
    scheduler
        .update(ids[1], shards[1].clone())
        .expect("update shard");
    println!(
        "shard B re-ingested -> generation {:?}, cache entries for it dropped \
         (now {} entries)",
        scheduler.generation(ids[1]).expect("registered"),
        scheduler.cache_stats().entries,
    );
    let probe = traffic_tick(1, &ids, objects);
    let after = scheduler
        .run_multi(&probe, &ExecOptions::new())
        .expect("post-update batch")
        .collapse()
        .expect("post-update batch");

    // Spot-check the serving contract: scheduled answers (dedup'd,
    // cached, wave-split — whatever the policies did) equal direct
    // engine execution on the current data.
    for (sq, want) in probe.iter().zip(&after) {
        let shard = &shards[ids.iter().position(|i| *i == sq.dataset).expect("known id")];
        let solo = engine
            .run(std::slice::from_ref(&sq.query), shard, &ExecOptions::new())
            .and_then(|o| o.into_single())
            .expect("solo");
        assert_eq!(&solo, want, "scheduled answers must equal solo execution");
    }
    println!("verified: scheduled results identical to per-query execution");
}
