//! Urban-planning analytics over OSM-like data (the paper's §1
//! motivating domain): building stock summaries per district with
//! metadata push-down filtering.
//!
//! ```sh
//! cargo run --release --example osm_analytics
//! ```

use atgis::pipeline::MetricsAgg;
use atgis::{Dataset, Engine, ExecOptions, FilterStrategy, Metric, Query};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::{Format, MetadataFilter, Mode};
use atgis_geometry::{DistanceModel, Mbr, Polygon};
use std::sync::Arc;

fn main() {
    let generator = OsmGenerator::new(7);
    let objects = generator.generate(20_000);
    let dataset = Dataset::from_bytes(write_geojson(&objects), Format::GeoJson);
    let engine = Engine::builder().threads(4).mode(Mode::Pat).build();

    // District grid: carve the world into 4 quadrants and summarise
    // each (the GROUP BY-style repeated aggregation of §2.1).
    println!("== district summaries ==");
    let world = Mbr::new(-10.0, 40.0, 10.0, 60.0);
    for (name, region) in [
        ("north-west", Mbr::new(world.min_x, 50.0, 0.0, world.max_y)),
        ("north-east", Mbr::new(0.0, 50.0, world.max_x, world.max_y)),
        ("south-west", Mbr::new(world.min_x, world.min_y, 0.0, 50.0)),
        ("south-east", Mbr::new(0.0, world.min_y, world.max_x, 50.0)),
    ] {
        let result = engine
            .run(&[Query::aggregation(region)], &dataset, &ExecOptions::new())
            .and_then(|o| o.into_single())
            .expect("district query");
        let agg = result.aggregate().expect("aggregate");
        println!(
            "{name:<12} {:>6} shapes, {:>12.2} km^2, {:>10.1} km boundary",
            agg.count,
            agg.total_area / 1e6,
            agg.total_perimeter / 1e3,
        );
    }

    // Metadata push-down: only `building=yes` objects, filtered during
    // parsing (§4.4: metadata predicates compile into the parse
    // stage) — here via the lower-level single-pass API.
    println!("\n== building stock (metadata filter pushed into the parser) ==");
    let filter = MetadataFilter::KeyEquals {
        key: "building".into(),
        value: "yes".into(),
    };
    let region = Arc::new(Polygon::from_mbr(&world));
    let proto = MetricsAgg::new(
        region,
        &[Metric::Area, Metric::Perimeter, Metric::Count],
        DistanceModel::Spherical,
        FilterStrategy::Buffered,
    );
    let (agg, timings) = engine
        .single_pass(&dataset, &filter, proto)
        .expect("filtered pass");
    println!(
        "buildings: {} covering {:.2} km^2 (split {:?}, process {:?}, merge {:?})",
        agg.values().count,
        agg.values().total_area / 1e6,
        timings.split,
        timings.process,
        timings.merge,
    );

    // Accuracy matters for boundary-length audits: compare the cheap
    // spherical projection against Andoyer's algorithm (Fig. 13).
    println!("\n== distance model comparison ==");
    for (model, name) in [
        (DistanceModel::Spherical, "spherical projection"),
        (DistanceModel::Andoyer, "Andoyer's algorithm"),
    ] {
        let q = Query::aggregation_with(
            world,
            vec![Metric::Perimeter, Metric::Count],
            model,
            FilterStrategy::Buffered,
        );
        let agg = engine
            .run(std::slice::from_ref(&q), &dataset, &ExecOptions::new())
            .and_then(|o| o.into_single())
            .expect("query")
            .aggregate()
            .expect("aggregate");
        println!(
            "{name:<22} total perimeter {:>14.3} km",
            agg.total_perimeter / 1e3
        );
    }
}
