//! Quickstart: run a spatial query directly over a raw GeoJSON file —
//! no loading, no indexing (the NoDB data-to-query story of §1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atgis::{Dataset, Engine, ExecOptions, Query};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;

fn main() {
    // 1. A raw GeoJSON dataset. In production this would be
    //    `Dataset::from_file("planet.geojson", Format::GeoJson)`.
    let objects = OsmGenerator::new(42).generate(10_000);
    let dataset = Dataset::from_bytes(write_geojson(&objects), Format::GeoJson);
    println!(
        "dataset: {} objects, {:.1} MB of raw GeoJSON",
        10_000,
        dataset.len() as f64 / 1e6
    );

    // 2. An engine: threads + execution mode are the only required
    //    choices. PAT uses marker-aligned splits with an optimised
    //    parser; FAT handles arbitrary splits speculatively.
    let engine = Engine::builder()
        .threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
        .mode(Mode::Pat)
        .build();

    // 3. Containment: everything intersecting a lon/lat box.
    let region = Mbr::new(-10.0, 40.0, 0.0, 50.0);
    let started = std::time::Instant::now();
    let result = engine
        .run(&[Query::containment(region)], &dataset, &ExecOptions::new())
        .expect("query failed")
        .into_single()
        .expect("query failed");
    println!(
        "containment: {} matches in {:?} (data-to-query, no load phase)",
        result.matches().len(),
        started.elapsed()
    );

    // 4. Aggregation: total area + perimeter of the selected shapes,
    //    computed in the same single pass over the raw bytes.
    let result = engine
        .run(&[Query::aggregation(region)], &dataset, &ExecOptions::new())
        .expect("query failed")
        .into_single()
        .expect("query failed");
    let agg = result.aggregate().expect("aggregate result");
    println!(
        "aggregation: {} shapes, total area {:.3} km^2, total perimeter {:.1} km",
        agg.count,
        agg.total_area / 1e6,
        agg.total_perimeter / 1e3
    );
}
