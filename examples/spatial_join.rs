//! Spatial join walkthrough: the two-pipeline PBSM join of §4.5 —
//! partition pass, join pass, duplicate elimination — plus the
//! combined query that wraps the join with filters and an aggregation.
//!
//! ```sh
//! cargo run --release --example spatial_join
//! ```

use atgis::engine::{PartitionPhase, StoreKind};
use atgis::{Dataset, Engine, ExecOptions, Query, QueryResult};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;

fn main() {
    let objects = OsmGenerator::new(99).generate(8_000);
    let dataset = Dataset::from_bytes(write_geojson(&objects), Format::GeoJson);
    let threshold = 4_000u64; // id < 4000 joins against id >= 4000.

    let engine = Engine::builder()
        .threads(4)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0) // The paper's sweet spot is 0.5-1 degree (§5.6).
        .store(StoreKind::Array)
        .partition_phase(PartitionPhase::Associative)
        .build();

    // Plain join: all intersecting (left, right) pairs.
    let out = engine
        .run(
            &[Query::join(threshold)],
            &dataset,
            &ExecOptions::new().timed(),
        )
        .expect("join failed");
    let stats = out.batch.clone().expect("timed run reports stats");
    let result = out.into_single().expect("join failed");
    let join_stats = stats.per_query[0].join.expect("join timings");
    println!("join: {} intersecting pairs", result.joined().len());
    println!(
        "  partition pipeline: {:?} (process {:?}, merge {:?})",
        join_stats.partition.total(),
        join_stats.partition.process,
        join_stats.partition.merge,
    );
    println!("  join pipeline:      {:?}", join_stats.join.total());
    println!("  dedup:              {:?}", join_stats.dedup);
    for pair in result.joined().iter().take(5) {
        println!(
            "  e.g. object {} intersects object {}",
            pair.left_id, pair.right_id
        );
    }

    // Combined query (Table 3): perimeter filters on both sides,
    // join, then SUM(ST_Area(ST_Union(d1, d2))) over the pairs.
    let q = Query::combined(threshold, 50.0, 1.0e6);
    let result = engine
        .run(std::slice::from_ref(&q), &dataset, &ExecOptions::new())
        .expect("combined failed")
        .into_single()
        .expect("combined failed");
    if let QueryResult::Combined {
        pairs,
        total_union_area,
    } = result
    {
        println!(
            "\ncombined: {pairs} filtered pairs, union area {:.3} km^2",
            total_union_area / 1e6
        );
    }

    // The store layout trade-off (Fig. 15): list stores merge in O(1)
    // but read slower.
    for (kind, name) in [(StoreKind::Array, "array"), (StoreKind::List, "list")] {
        let e = Engine::builder()
            .threads(4)
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .store(kind)
            .build();
        let started = std::time::Instant::now();
        let r = e
            .run(&[Query::join(threshold)], &dataset, &ExecOptions::new())
            .expect("join")
            .into_single()
            .expect("join");
        println!(
            "store={name:<6} {} pairs in {:?}",
            r.joined().len(),
            started.elapsed()
        );
    }
}
