//! `stream_server` — serving queries while the dataset is still
//! arriving.
//!
//! Simulates a network feed delivering a GeoJSON dataset in chunks
//! (producer thread + bounded channel back-pressure) into a streaming
//! [`QuerySession`]:
//!
//! 1. while chunks arrive, the server answers **single-pass** queries
//!    (containment / aggregation) over the feature-complete prefix
//!    ingested so far — no waiting for the full file;
//! 2. a partition sink rides the incremental scan, so when the feed
//!    ends, `finish()` seals the join index *without re-reading a
//!    byte*;
//! 3. after sealing, **join-class** traffic is served from the warm
//!    index cache (zero parse passes), exactly like a pinned session.
//!
//! A second act runs the one-shot pipeline — `execute_streaming_batch`
//! over a file source — and checks it against buffered execution.

use atgis::{chunk_channel, Dataset, Engine, ExecOptions, Query, QuerySession};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use std::time::Instant;

fn main() {
    let objects = 4000usize;
    let gen = OsmGenerator::new(2026).generate(objects);
    let bytes = write_geojson(&gen);
    let threshold = (objects / 2) as u64;
    println!(
        "stream_server: {} objects, {:.1} MB GeoJSON feed",
        objects,
        bytes.len() as f64 / (1024.0 * 1024.0)
    );

    let engine = Engine::builder()
        .threads(0) // match the machine
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build();

    // ---- Act 1: a live feed into a streaming session ----
    let mut session =
        QuerySession::streaming(engine.clone(), Format::GeoJson).expect("open streaming session");
    let (tx, mut rx) = chunk_channel(8);
    let feed = bytes.clone();
    let producer = std::thread::spawn(move || {
        for chunk in feed.chunks(64 * 1024) {
            if tx.send(chunk.to_vec()).is_err() {
                return;
            }
        }
    });

    let region = Query::containment(Mbr::new(-10.0, 40.0, 0.0, 50.0));
    let started = Instant::now();
    let mut ticks = 0u32;
    use atgis::ChunkSource as _;
    while let Some(chunk) = rx.next_chunk().expect("feed chunk") {
        session.ingest_chunk(&chunk).expect("ingest");
        ticks += 1;
        // Every few chunks, a tenant queries the prefix served so far.
        if ticks.is_multiple_of(8) {
            let r = session
                .run(std::slice::from_ref(&region), &ExecOptions::new())
                .and_then(|o| o.into_single())
                .expect("prefix query");
            println!(
                "  t+{:>6.1?}: {:>7} bytes ingested ({:>5.1}% queryable), prefix matches: {}",
                started.elapsed(),
                session.ingested_len(),
                100.0 * session.dataset().len() as f64 / bytes.len() as f64,
                r.matches().len()
            );
        }
    }
    producer.join().expect("producer");

    // Joins are refused until the stream seals.
    assert!(
        session
            .run(&[Query::join(threshold)], &ExecOptions::new())
            .is_err(),
        "join before finish must be refused"
    );
    let stats = session.finish().expect("seal session");
    println!(
        "sealed after {:?}: {} chunks, {} scan regions, peak {} fragments in flight",
        started.elapsed(),
        stats.chunks,
        stats.regions,
        stats.peak_fragments
    );

    // Join traffic now runs from the warm index: zero parse passes.
    let out = session
        .run(
            &[
                Query::join(threshold),
                Query::combined(threshold, 10.0, 1.0e7),
            ],
            &ExecOptions::new().timed(),
        )
        .expect("sealed joins");
    let jstats = out.batch.clone().expect("timed run reports stats");
    let results = out.collapse().expect("sealed joins");
    println!(
        "sealed join batch: {} pairs, {} parse passes (index sealed by ingest)",
        results[0].joined().len(),
        jstats.scan_passes
    );
    assert_eq!(
        jstats.scan_passes, 0,
        "sealed index must serve joins scan-free"
    );

    // The sealed session is bit-identical to buffered execution.
    let reference = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
    let want = engine
        .run(&[Query::join(threshold)], &reference, &ExecOptions::new())
        .and_then(|o| o.into_single())
        .expect("buffered reference");
    assert_eq!(results[0], want, "streamed session ≡ buffered execution");

    // ---- Act 2: one-shot streaming execution from a file ----
    let path =
        std::env::temp_dir().join(format!("atgis_stream_server_{}.json", std::process::id()));
    std::fs::write(&path, &bytes).expect("spill feed");
    let queries = vec![
        Query::containment(Mbr::new(-10.0, 40.0, 0.0, 50.0)),
        Query::aggregation(Mbr::new(-10.0, 40.0, 0.0, 50.0)),
        Query::join(threshold),
    ];
    let mut source =
        atgis::FileChunkSource::open_with_chunk_len(&path, 1 << 20).expect("open feed file");
    let started = Instant::now();
    let out = engine
        .run_streaming(
            &queries,
            &mut source,
            Format::GeoJson,
            &ExecOptions::new().timed(),
        )
        .expect("one-shot streamed batch");
    let bstats = out.batch.clone().expect("timed run reports stats");
    let sstats = out.stream.clone().expect("stream stats");
    let streamed = out.collapse().expect("one-shot streamed batch");
    let elapsed = started.elapsed();
    let buffered: Vec<_> = queries
        .iter()
        .map(|q| {
            engine
                .run(std::slice::from_ref(q), &reference, &ExecOptions::new())
                .and_then(|o| o.into_single())
                .expect("buffered")
        })
        .collect();
    assert_eq!(streamed, buffered, "one-shot streamed ≡ buffered");
    std::fs::remove_file(&path).ok();
    println!(
        "one-shot streamed batch: {} queries in {:?} ({:.1} MB/s aggregate, {} pass, ingest wait {:?})",
        queries.len(),
        elapsed,
        (bytes.len() * queries.len()) as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64(),
        bstats.scan_passes,
        sstats.ingest_wait,
    );
    println!("stream_server: all invariants held");
}
