//! Integration test crate for AT-GIS (tests live in `tests/tests/`).
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the integration-test crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.

use atgis::scheduler::DatasetId;
use atgis::stats::{BatchStats, SchedulerStats};
use atgis::{
    Dataset, Engine, ExecOptions, Query, QueryResult, QueryScheduler, QuerySession, Result,
};

/// Test sugar over the unified [`ExecOptions`] API: "execute this,
/// default options, collapsed result". Every method delegates to
/// [`Engine::run`] / [`QuerySession::run`] / [`QueryScheduler::run`];
/// nothing here touches the deprecated `execute*` compatibility
/// wrappers.
pub trait RunExt {
    /// One query, default options.
    fn exec1(&self, query: &Query, dataset: &Dataset) -> Result<QueryResult>;
    /// A batch, default options, collapsed.
    fn execb(&self, queries: &[Query], dataset: &Dataset) -> Result<Vec<QueryResult>>;
    /// A batch with the amortisation breakdown.
    fn execb_timed(
        &self,
        queries: &[Query],
        dataset: &Dataset,
    ) -> Result<(Vec<QueryResult>, BatchStats)>;
}

impl RunExt for Engine {
    fn exec1(&self, query: &Query, dataset: &Dataset) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), dataset, &ExecOptions::new())?
            .into_single()
    }

    fn execb(&self, queries: &[Query], dataset: &Dataset) -> Result<Vec<QueryResult>> {
        self.run(queries, dataset, &ExecOptions::new())?.collapse()
    }

    fn execb_timed(
        &self,
        queries: &[Query],
        dataset: &Dataset,
    ) -> Result<(Vec<QueryResult>, BatchStats)> {
        let out = self.run(queries, dataset, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }
}

/// [`RunExt`]'s session-level counterpart.
pub trait SessionRunExt {
    /// One query, default options.
    fn exec1(&self, query: &Query) -> Result<QueryResult>;
    /// A batch, default options, collapsed.
    fn execb(&self, queries: &[Query]) -> Result<Vec<QueryResult>>;
    /// A batch with the amortisation breakdown.
    fn execb_timed(&self, queries: &[Query]) -> Result<(Vec<QueryResult>, BatchStats)>;
}

impl SessionRunExt for QuerySession {
    fn exec1(&self, query: &Query) -> Result<QueryResult> {
        self.run(std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    fn execb(&self, queries: &[Query]) -> Result<Vec<QueryResult>> {
        self.run(queries, &ExecOptions::new())?.collapse()
    }

    fn execb_timed(&self, queries: &[Query]) -> Result<(Vec<QueryResult>, BatchStats)> {
        let out = self.run(queries, &ExecOptions::new().timed())?;
        let stats = out.batch.clone().expect("timed run reports batch stats");
        Ok((out.collapse()?, stats))
    }
}

/// [`RunExt`]'s scheduler-level counterpart.
pub trait SchedRunExt {
    /// One query, default options.
    fn exec1(&self, id: DatasetId, query: &Query) -> Result<QueryResult>;
    /// A batch, default options, collapsed.
    fn execb(&self, id: DatasetId, queries: &[Query]) -> Result<Vec<QueryResult>>;
    /// A batch with the scheduling breakdown.
    fn execb_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)>;
}

impl SchedRunExt for QueryScheduler {
    fn exec1(&self, id: DatasetId, query: &Query) -> Result<QueryResult> {
        self.run(id, std::slice::from_ref(query), &ExecOptions::new())?
            .into_single()
    }

    fn execb(&self, id: DatasetId, queries: &[Query]) -> Result<Vec<QueryResult>> {
        self.run(id, queries, &ExecOptions::new())?.collapse()
    }

    fn execb_timed(
        &self,
        id: DatasetId,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, SchedulerStats)> {
        let out = self.run(id, queries, &ExecOptions::new().timed())?;
        let stats = out
            .scheduler
            .clone()
            .expect("timed run reports scheduler stats");
        Ok((out.collapse()?, stats))
    }
}

use atgis::stats::StreamStats;
use atgis::stream::ChunkSource;
use atgis_formats::Format;

/// [`RunExt`]'s streaming counterpart over [`Engine::run_streaming`].
pub trait StreamRunExt {
    /// One query over a chunk stream, default options.
    fn stream1(
        &self,
        query: &Query,
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<QueryResult>;
    /// A streamed batch with batch + stream statistics.
    fn streamb_timed(
        &self,
        queries: &[Query],
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<(Vec<QueryResult>, BatchStats, StreamStats)>;
}

impl StreamRunExt for Engine {
    fn stream1(
        &self,
        query: &Query,
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<QueryResult> {
        self.run_streaming(
            std::slice::from_ref(query),
            source,
            format,
            &ExecOptions::new(),
        )?
        .into_single()
    }

    fn streamb_timed(
        &self,
        queries: &[Query],
        source: &mut dyn ChunkSource,
        format: Format,
    ) -> Result<(Vec<QueryResult>, BatchStats, StreamStats)> {
        let out = self.run_streaming(queries, source, format, &ExecOptions::new().timed())?;
        let batch = out.batch.clone().expect("timed run reports batch stats");
        let stream = out
            .stream
            .clone()
            .expect("streaming run reports stream stats");
        Ok((out.collapse()?, batch, stream))
    }
}
