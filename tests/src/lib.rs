//! Integration test crate for AT-GIS (tests live in `tests/tests/`).
//!
//! See `ARCHITECTURE.md` at the repository root for how this crate
//! fits into the workspace as the integration-test crate of the four-layer design,
//! plus the ingest → seal → query lifecycle and the data flow of a
//! scheduled batch.
