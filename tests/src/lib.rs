//! Integration test crate for AT-GIS (tests live in `tests/tests/`).
