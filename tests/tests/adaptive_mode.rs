//! Tests for the §5.5 hybrid: `Mode::Adaptive` must pick PAT on
//! marker-dense data and FAT on marker-sparse (few huge objects) data,
//! and must always produce the same answers as both fixed modes.

use atgis::{Dataset, Engine, Query};
use atgis_datagen::{write_geojson, OsmGenerator, SynthConfig};
use atgis_formats::{resolve_adaptive, Format, Mode};
use atgis_geometry::Mbr;
use atgis_tests::RunExt;

#[test]
fn dense_markers_resolve_to_pat() {
    let ds = OsmGenerator::new(1).generate(500);
    let bytes = write_geojson(&ds);
    assert_eq!(
        resolve_adaptive(&bytes, atgis_formats::geojson::FEATURE_MARKER, 4),
        Mode::Pat
    );
}

#[test]
fn sparse_markers_resolve_to_fat() {
    // Three giant objects: far fewer markers than blocks wanted.
    let ds = SynthConfig {
        objects: 3,
        sigma: 0.1,
        mu: 9.0, // ~8000 edges each
        seed: 6,
        multipolygon_fraction: 0.0,
    }
    .generate();
    let bytes = write_geojson(&ds);
    assert_eq!(
        resolve_adaptive(&bytes, atgis_formats::geojson::FEATURE_MARKER, 16),
        Mode::Fat
    );
}

#[test]
fn empty_input_resolves_to_fat() {
    assert_eq!(resolve_adaptive(b"", b"X", 4), Mode::Fat);
}

#[test]
fn adaptive_engine_matches_fixed_modes() {
    let world = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    let q = Query::containment(world);
    for (name, ds) in [
        (
            "dense",
            Dataset::from_bytes(
                write_geojson(&OsmGenerator::new(2).generate(200)),
                Format::GeoJson,
            ),
        ),
        (
            "sparse",
            Dataset::from_bytes(
                write_geojson(
                    &SynthConfig {
                        objects: 5,
                        sigma: 0.1,
                        mu: 8.0,
                        seed: 7,
                        multipolygon_fraction: 0.0,
                    }
                    .generate(),
                ),
                Format::GeoJson,
            ),
        ),
    ] {
        let adaptive = Engine::builder()
            .mode(Mode::Adaptive)
            .threads(2)
            .build()
            .exec1(&q, &ds)
            .unwrap();
        let pat = Engine::builder()
            .mode(Mode::Pat)
            .build()
            .exec1(&q, &ds)
            .unwrap();
        assert_eq!(adaptive.matches(), pat.matches(), "{name}");
    }
}

#[test]
fn adaptive_parse_all_agrees_with_fixed() {
    let ds = OsmGenerator::new(3).generate(100);
    let bytes = write_geojson(&ds);
    let filter = atgis_formats::MetadataFilter::All;
    let adaptive =
        atgis_formats::parse_all(&bytes, Format::GeoJson, Mode::Adaptive, &filter).unwrap();
    let pat = atgis_formats::parse_all(&bytes, Format::GeoJson, Mode::Pat, &filter).unwrap();
    assert_eq!(adaptive, pat);
}
