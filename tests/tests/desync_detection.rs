//! Failure injection for the §3.5 hazard: the FAT sync marker
//! (`{"type":"Feature"`) appearing inside free-form metadata. The
//! contract is *fail loudly or parse correctly* — never silently drop
//! or duplicate features.

use atgis_formats::geojson::{parse_fat, parse_pat};
use atgis_formats::MetadataFilter;

/// A document whose single feature hides the marker pattern inside a
/// nested properties object.
const TRAP: &str = concat!(
    r#"{"type":"FeatureCollection","features":["#,
    r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":1,"#,
    r#""properties":{"trap":{"type":"Feature","x":1},"name":"decoy"}},"#,
    r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[3.0,4.0]},"id":2,"properties":{}}"#,
    r#"]}"#
);

#[test]
fn trap_document_never_silently_misparses() {
    let input = TRAP.as_bytes();
    let reference = parse_fat(input, &MetadataFilter::All, 1).expect("whole-input parse");
    assert_eq!(reference.len(), 2);
    for blocks in 2..60 {
        match parse_fat(input, &MetadataFilter::All, blocks) {
            Ok(features) => assert_eq!(features, reference, "blocks={blocks}"),
            Err(atgis_formats::ParseError::Desync { .. }) => {
                // Loud failure is acceptable per the documented
                // contract; silent corruption is not.
            }
            Err(other) => panic!("unexpected error kind at blocks={blocks}: {other}"),
        }
    }
}

#[test]
fn trap_in_string_is_never_a_problem() {
    // Marker inside a *string literal* is invisible to the lexer: all
    // splits must parse correctly.
    let doc = concat!(
        r#"{"type":"FeatureCollection","features":["#,
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0]},"id":1,"#,
        r#""properties":{"note":"{\"type\":\"Feature\" inside a string"}},"#,
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[3.0,4.0]},"id":2,"properties":{}}"#,
        r#"]}"#
    );
    let input = doc.as_bytes();
    let reference = parse_pat(input, &MetadataFilter::All).unwrap();
    assert_eq!(reference.len(), 2);
    for blocks in 1..60 {
        let got = parse_fat(input, &MetadataFilter::All, blocks)
            .unwrap_or_else(|e| panic!("blocks={blocks}: {e}"));
        assert_eq!(got, reference, "blocks={blocks}");
    }
}

#[test]
fn truncated_document_reports_error() {
    let full = TRAP.as_bytes();
    // Cut the document mid-feature at several points.
    for cut in [full.len() - 3, full.len() / 2, full.len() / 3] {
        let truncated = &full[..cut];
        let r = parse_fat(truncated, &MetadataFilter::All, 4);
        // Either a loud error or a clean prefix of the reference —
        // but never a panic and never invented features.
        if let Ok(features) = r {
            assert!(features.len() <= 2);
        }
    }
}
