//! Differential-testing harness: every engine query shape runs against
//! the `atgis-baselines::sequential` oracle (one thread, one parse
//! pass, nested-loop join) on synthetic datasets, and the results must
//! be identical across every engine configuration — thread counts,
//! uniform vs skew-adaptive partitioning, sweep vs R-tree MBR compare,
//! FAT vs PAT parsing — plus the `ByteDfa` bulk scanner against its
//! byte-at-a-time reference. Set `ATGIS_MMAP=1` to run the same suite
//! over memory-mapped datasets instead of heap buffers, covering both
//! `Dataset` storage paths.

use atgis::{Dataset, Engine, ProbeStrategy, Query, QueryResult, QuerySession};
use atgis_baselines::{sequential, BaselineAnswer, BaselineQuery};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread counts exercised for every engine configuration.
const THREADS: [usize; 3] = [1, 2, 8];

/// Uniform grid (target 0) vs adaptive partitioning with a target tiny
/// enough to force hot-cell splits on these small datasets.
const PARTITION_TARGETS: [usize; 2] = [0, 4];

fn mmap_enabled() -> bool {
    std::env::var("ATGIS_MMAP")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Heap-backed dataset, or a temp-file memory mapping when
/// `ATGIS_MMAP=1` (the file is unlinked once the mapping is live).
fn materialize(bytes: Vec<u8>, format: Format) -> Dataset {
    if mmap_enabled() {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "atgis_differential_{}_{}.dat",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&path, &bytes).is_ok() {
            let mapped = Dataset::mmap(&path, format);
            std::fs::remove_file(&path).ok();
            if let Ok(d) = mapped {
                return d;
            }
        }
    }
    Dataset::from_bytes(bytes, format)
}

fn dataset(seed: u64, n: usize, format: Format) -> Dataset {
    dataset_with(OsmGenerator::new(seed), n, format)
}

fn dataset_with(gen: OsmGenerator, n: usize, format: Format) -> Dataset {
    let ds = gen.generate(n);
    let bytes = match format {
        Format::GeoJson => write_geojson(&ds),
        Format::Wkt => write_wkt(&ds),
        Format::OsmXml => write_osm_xml(&ds),
    };
    materialize(bytes, format)
}

/// Every engine configuration the suite sweeps: thread counts ×
/// partitioning schemes × probe strategies (joins only vary by the
/// latter two; single-pass queries only by threads/mode).
fn engines() -> Vec<(String, Engine)> {
    let mut out = Vec::new();
    for threads in THREADS {
        for target in PARTITION_TARGETS {
            for (pname, probe) in [
                ("auto", ProbeStrategy::Auto),
                ("sweep", ProbeStrategy::Sweep),
                ("rtree", ProbeStrategy::RTree),
            ] {
                out.push((
                    format!("threads={threads} target={target} probe={pname}"),
                    Engine::builder()
                        .threads(threads)
                        .cell_size(2.0)
                        .partition_target(target)
                        .probe_strategy(probe)
                        .build(),
                ));
            }
        }
    }
    out
}

fn oracle(ds: &Dataset, format: Format, q: &BaselineQuery) -> BaselineAnswer {
    sequential::execute(ds.bytes(), format, q).expect("oracle parses its own input")
}

#[test]
fn containment_matches_oracle_everywhere() {
    let region = Mbr::new(-6.0, 44.0, 4.0, 56.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(301, 90, format);
        let want = match oracle(&ds, format, &BaselineQuery::containment(region)) {
            BaselineAnswer::Matches(ids) => ids,
            other => panic!("{other:?}"),
        };
        assert!(!want.is_empty(), "query must select something");
        for (config, engine) in engines() {
            let r = engine.execute(&Query::containment(region), &ds).unwrap();
            let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
            got.sort_unstable();
            assert_eq!(got, want, "containment {format:?} [{config}]");
        }
    }
}

#[test]
fn count_and_aggregate_match_oracle_everywhere() {
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(302, 80, format);
        let (want_count, want_area, want_perimeter) =
            match oracle(&ds, format, &BaselineQuery::aggregation(region)) {
                BaselineAnswer::Aggregate(c, a, p) => (c, a, p),
                other => panic!("{other:?}"),
            };
        assert!(want_count > 0);
        for (config, engine) in engines() {
            let agg = engine
                .execute(&Query::aggregation(region), &ds)
                .unwrap()
                .aggregate()
                .unwrap();
            assert_eq!(agg.count, want_count, "count {format:?} [{config}]");
            // The engine merges fragments as a tree, the oracle folds
            // left-to-right: float sums may differ in the last ulps.
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            assert!(
                close(agg.total_area, want_area),
                "area {format:?} [{config}]: {} vs {want_area}",
                agg.total_area
            );
            assert!(
                close(agg.total_perimeter, want_perimeter),
                "perimeter {format:?} [{config}]: {} vs {want_perimeter}",
                agg.total_perimeter
            );
        }
    }
}

#[test]
fn join_matches_oracle_everywhere() {
    for format in [Format::GeoJson, Format::Wkt] {
        // Half the objects share one 0.03° blob so the dataset
        // actually contains intersecting cross-side pairs.
        let ds = dataset_with(OsmGenerator::new(303).with_hotspot(0.5, 0.03), 120, format);
        let threshold = 60;
        let want = match oracle(&ds, format, &BaselineQuery::Join(threshold)) {
            BaselineAnswer::Pairs(pairs) => pairs,
            other => panic!("{other:?}"),
        };
        assert!(!want.is_empty(), "join must produce pairs");
        for (config, engine) in engines() {
            let r = engine.execute(&Query::join(threshold), &ds).unwrap();
            let mut got: Vec<(u64, u64)> =
                r.joined().iter().map(|p| (p.left_id, p.right_id)).collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, want, "join {format:?} [{config}]");
        }
    }
}

#[test]
fn skewed_join_matches_oracle_everywhere() {
    // The corridor workload of the Fig. 14 experiment, small enough
    // for the nested-loop oracle: the shape that actually exercises
    // hot-cell splitting and the per-partition probe choice.
    let mut gen = OsmGenerator::new(304)
        .with_corridor(0.8, 0.001, 0.3)
        .with_object_scale(0.3);
    gen.road_fraction = 0.0;
    gen.collection_fraction = 0.0;
    let bytes = write_geojson(&gen.generate(120));
    let ds = materialize(bytes, Format::GeoJson);
    let want = match oracle(&ds, Format::GeoJson, &BaselineQuery::Join(60)) {
        BaselineAnswer::Pairs(pairs) => pairs,
        other => panic!("{other:?}"),
    };
    assert!(!want.is_empty(), "skewed join must produce pairs");
    for (config, engine) in engines() {
        let r = engine.execute(&Query::join(60), &ds).unwrap();
        let mut got: Vec<(u64, u64)> = r.joined().iter().map(|p| (p.left_id, p.right_id)).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, want, "skewed join [{config}]");
    }
}

#[test]
fn xml_containment_matches_oracle() {
    let region = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    let ds = dataset(305, 40, Format::OsmXml);
    let want = match oracle(&ds, Format::OsmXml, &BaselineQuery::containment(region)) {
        BaselineAnswer::Matches(ids) => ids,
        other => panic!("{other:?}"),
    };
    for threads in THREADS {
        let engine = Engine::builder().threads(threads).build();
        let r = engine.execute(&Query::containment(region), &ds).unwrap();
        let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
        got.sort_unstable();
        assert_eq!(got, want, "xml containment threads={threads}");
    }
}

#[test]
fn fat_and_pat_modes_match_oracle() {
    let region = Mbr::new(-6.0, 44.0, 4.0, 56.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(306, 60, format);
        let want = match oracle(&ds, format, &BaselineQuery::containment(region)) {
            BaselineAnswer::Matches(ids) => ids,
            other => panic!("{other:?}"),
        };
        for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
            let engine = Engine::builder().threads(2).mode(mode).build();
            let r = engine.execute(&Query::containment(region), &ds).unwrap();
            let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
            got.sort_unstable();
            assert_eq!(got, want, "containment {format:?} mode={mode:?}");
        }
    }
}

/// Every query-kind mix the batch suite sweeps: each kind alone, every
/// pair class, and a full 8-query mixed batch with duplicates (the
/// serving-traffic shape).
fn batch_mixes(n: u64) -> Vec<Vec<Query>> {
    let world = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    vec![
        vec![Query::containment(region)],
        vec![Query::aggregation(region)],
        vec![Query::join(n / 2)],
        vec![Query::combined(n / 2, 0.0, f64::INFINITY)],
        vec![Query::containment(region), Query::aggregation(world)],
        vec![Query::containment(region), Query::join(n / 3)],
        vec![
            // The 8-query mixed batch: all kinds, duplicate kinds with
            // different parameters, duplicate identical queries.
            Query::containment(region),
            Query::containment(world),
            Query::aggregation(region),
            Query::aggregation(world),
            Query::join(n / 2),
            Query::join(n / 4),
            Query::combined(n / 2, 0.0, f64::INFINITY),
            Query::containment(region),
        ],
    ]
}

/// `execute_batch(qs)` must be **bit-identical** to `qs.map(execute)`
/// — exact float equality, exact orders — for every query-kind mix,
/// across threads × PAT/FAT/Adaptive × uniform/adaptive partitioning,
/// on both single-pass formats.
#[test]
fn batch_execution_matches_sequential_everywhere() {
    for format in [Format::GeoJson, Format::Wkt] {
        let n = 90u64;
        let ds = dataset_with(
            OsmGenerator::new(308).with_hotspot(0.4, 0.05),
            n as usize,
            format,
        );
        for threads in THREADS {
            for target in PARTITION_TARGETS {
                for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
                    let engine = Engine::builder()
                        .threads(threads)
                        .mode(mode)
                        .cell_size(2.0)
                        .partition_target(target)
                        .build();
                    for (mi, mix) in batch_mixes(n).iter().enumerate() {
                        let want: Vec<QueryResult> = mix
                            .iter()
                            .map(|q| engine.execute(q, &ds).unwrap())
                            .collect();
                        let (got, stats) = engine.execute_batch_timed(mix, &ds).unwrap();
                        let config = format!(
                            "{format:?} threads={threads} target={target} mode={mode:?} mix={mi}"
                        );
                        assert_eq!(got, want, "batch != sequential [{config}]");
                        assert_eq!(
                            stats.scan_passes, 1,
                            "every mix runs exactly one shared pass [{config}]"
                        );
                        assert_eq!(stats.queries as usize, mix.len());
                    }
                }
            }
        }
    }
}

/// The XML path (two-pass parse + node-table joins) through the batch
/// layer.
#[test]
fn batch_execution_matches_sequential_on_xml() {
    let ds = dataset(309, 40, Format::OsmXml);
    let mix = vec![
        Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
        Query::aggregation(Mbr::new(-8.0, 42.0, 6.0, 58.0)),
        Query::join(20),
    ];
    for threads in THREADS {
        let engine = Engine::builder().threads(threads).cell_size(2.0).build();
        let want: Vec<QueryResult> = mix
            .iter()
            .map(|q| engine.execute(q, &ds).unwrap())
            .collect();
        let got = engine.execute_batch(&mix, &ds).unwrap();
        assert_eq!(got, want, "xml batch threads={threads}");
    }

    // The XML node-table pass is cached with the partition index:
    // warm-session join-only batches run zero parse passes, same as
    // the single-pass formats.
    let engine = Engine::builder().threads(2).cell_size(2.0).build();
    let join_only = vec![Query::join(20)];
    let want: Vec<QueryResult> = join_only
        .iter()
        .map(|q| engine.execute(q, &ds).unwrap())
        .collect();
    let session = QuerySession::new(engine, ds);
    let (cold, s_cold) = session.execute_batch_timed(&join_only).unwrap();
    let (warm, s_warm) = session.execute_batch_timed(&join_only).unwrap();
    assert_eq!(cold, want);
    assert_eq!(warm, want);
    assert_eq!(s_cold.scan_passes, 2, "partition pass + node-table pass");
    assert_eq!(s_warm.scan_passes, 0, "both XML passes cached");
}

/// A `QuerySession` must keep answering identically while its
/// partition-index cache warms up (second batch: zero parse passes
/// for join-only traffic).
#[test]
fn session_batches_stay_consistent_across_cache_states() {
    let n = 80u64;
    let ds = dataset_with(
        OsmGenerator::new(310).with_hotspot(0.4, 0.05),
        n as usize,
        Format::GeoJson,
    );
    for target in PARTITION_TARGETS {
        let engine = Engine::builder()
            .threads(2)
            .cell_size(2.0)
            .partition_target(target)
            .build();
        let joins = vec![
            Query::join(n / 2),
            Query::combined(n / 3, 0.0, f64::INFINITY),
        ];
        let want: Vec<QueryResult> = joins
            .iter()
            .map(|q| engine.execute(q, &ds).unwrap())
            .collect();
        let session = QuerySession::new(engine, ds.clone());
        let (cold, s_cold) = session.execute_batch_timed(&joins).unwrap();
        let (warm, s_warm) = session.execute_batch_timed(&joins).unwrap();
        assert_eq!(cold, want, "cold cache, target={target}");
        assert_eq!(warm, want, "warm cache, target={target}");
        assert_eq!(s_cold.scan_passes, 1);
        assert_eq!(
            s_warm.scan_passes, 0,
            "join-only batch over a cached index re-parses nothing"
        );
        assert_eq!(session.cached_indexes(), 1);
    }
}

#[test]
fn bulk_scanner_matches_bytewise_reference() {
    // The GeoJSON structural lexer over a real serialised dataset:
    // `ByteDfa::run` (SWAR skip classes) must emit exactly the action
    // tape of the byte-at-a-time reference from every start state.
    let bytes = write_geojson(&OsmGenerator::new(307).generate(100));
    let dfa = atgis_formats::geojson::lexer::lexer();
    let start = dfa.start_state();
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    let f_fin = dfa.run(start, &bytes, 0, |action, pos| fast.push((action, pos)));
    let s_fin = dfa.run_bytewise(start, &bytes, 0, |action, pos| slow.push((action, pos)));
    assert_eq!(f_fin, s_fin, "final states diverge");
    assert_eq!(fast.len(), slow.len(), "action tape lengths diverge");
    assert_eq!(fast, slow, "action tapes diverge");
    assert!(!fast.is_empty(), "the lexer must emit actions");

    // And from every state, over a chunk boundary, as FAT blocks do.
    let mid = bytes.len() / 2;
    for s in 0..dfa.num_states() as u8 {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let ff = dfa.run(s, &bytes[mid..], mid as u64, |a, p| fast.push((a, p)));
        let fs = dfa.run_bytewise(s, &bytes[mid..], mid as u64, |a, p| slow.push((a, p)));
        assert_eq!(ff, fs, "state {s}: finals diverge");
        assert_eq!(fast, slow, "state {s}: tapes diverge");
    }
}
