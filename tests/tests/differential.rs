//! Differential-testing harness: every engine query shape runs against
//! the `atgis-baselines::sequential` oracle (one thread, one parse
//! pass, nested-loop join) on synthetic datasets, and the results must
//! be identical across every engine configuration — thread counts,
//! uniform vs skew-adaptive partitioning, sweep vs R-tree MBR compare,
//! FAT vs PAT parsing — plus the `ByteDfa` bulk scanner against its
//! byte-at-a-time reference. Set `ATGIS_MMAP=1` to run the same suite
//! over memory-mapped datasets instead of heap buffers, covering both
//! `Dataset` storage paths.

use atgis::{
    Dataset, Engine, ExecOptions, ProbeStrategy, Query, QueryResult, QueryScheduler, QuerySession,
    ScheduledQuery, SchedulerConfig,
};
use atgis_baselines::{sequential, BaselineAnswer, BaselineQuery};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use atgis_tests::{RunExt, SchedRunExt, SessionRunExt};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread counts exercised for every engine configuration.
const THREADS: [usize; 3] = [1, 2, 8];

/// Uniform grid (target 0) vs adaptive partitioning with a target tiny
/// enough to force hot-cell splits on these small datasets.
const PARTITION_TARGETS: [usize; 2] = [0, 4];

fn mmap_enabled() -> bool {
    std::env::var("ATGIS_MMAP")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Heap-backed dataset, or a temp-file memory mapping when
/// `ATGIS_MMAP=1` (the file is unlinked once the mapping is live).
fn materialize(bytes: Vec<u8>, format: Format) -> Dataset {
    if mmap_enabled() {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "atgis_differential_{}_{}.dat",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&path, &bytes).is_ok() {
            let mapped = Dataset::mmap(&path, format);
            std::fs::remove_file(&path).ok();
            if let Ok(d) = mapped {
                return d;
            }
        }
    }
    Dataset::from_bytes(bytes, format)
}

fn dataset(seed: u64, n: usize, format: Format) -> Dataset {
    dataset_with(OsmGenerator::new(seed), n, format)
}

fn dataset_with(gen: OsmGenerator, n: usize, format: Format) -> Dataset {
    let ds = gen.generate(n);
    let bytes = match format {
        Format::GeoJson => write_geojson(&ds),
        Format::Wkt => write_wkt(&ds),
        Format::OsmXml => write_osm_xml(&ds),
    };
    materialize(bytes, format)
}

/// Every engine configuration the suite sweeps: thread counts ×
/// partitioning schemes × probe strategies (joins only vary by the
/// latter two; single-pass queries only by threads/mode).
fn engines() -> Vec<(String, Engine)> {
    let mut out = Vec::new();
    for threads in THREADS {
        for target in PARTITION_TARGETS {
            for (pname, probe) in [
                ("auto", ProbeStrategy::Auto),
                ("sweep", ProbeStrategy::Sweep),
                ("rtree", ProbeStrategy::RTree),
            ] {
                out.push((
                    format!("threads={threads} target={target} probe={pname}"),
                    Engine::builder()
                        .threads(threads)
                        .cell_size(2.0)
                        .partition_target(target)
                        .probe_strategy(probe)
                        .build(),
                ));
            }
        }
    }
    out
}

fn oracle(ds: &Dataset, format: Format, q: &BaselineQuery) -> BaselineAnswer {
    sequential::execute(ds.bytes(), format, q).expect("oracle parses its own input")
}

#[test]
fn containment_matches_oracle_everywhere() {
    let region = Mbr::new(-6.0, 44.0, 4.0, 56.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(301, 90, format);
        let want = match oracle(&ds, format, &BaselineQuery::containment(region)) {
            BaselineAnswer::Matches(ids) => ids,
            other => panic!("{other:?}"),
        };
        assert!(!want.is_empty(), "query must select something");
        for (config, engine) in engines() {
            let r = engine.exec1(&Query::containment(region), &ds).unwrap();
            let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
            got.sort_unstable();
            assert_eq!(got, want, "containment {format:?} [{config}]");
        }
    }
}

#[test]
fn count_and_aggregate_match_oracle_everywhere() {
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(302, 80, format);
        let (want_count, want_area, want_perimeter) =
            match oracle(&ds, format, &BaselineQuery::aggregation(region)) {
                BaselineAnswer::Aggregate(c, a, p) => (c, a, p),
                other => panic!("{other:?}"),
            };
        assert!(want_count > 0);
        for (config, engine) in engines() {
            let agg = engine
                .exec1(&Query::aggregation(region), &ds)
                .unwrap()
                .aggregate()
                .unwrap();
            assert_eq!(agg.count, want_count, "count {format:?} [{config}]");
            // The engine merges fragments as a tree, the oracle folds
            // left-to-right: float sums may differ in the last ulps.
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            assert!(
                close(agg.total_area, want_area),
                "area {format:?} [{config}]: {} vs {want_area}",
                agg.total_area
            );
            assert!(
                close(agg.total_perimeter, want_perimeter),
                "perimeter {format:?} [{config}]: {} vs {want_perimeter}",
                agg.total_perimeter
            );
        }
    }
}

#[test]
fn join_matches_oracle_everywhere() {
    for format in [Format::GeoJson, Format::Wkt] {
        // Half the objects share one 0.03° blob so the dataset
        // actually contains intersecting cross-side pairs.
        let ds = dataset_with(OsmGenerator::new(303).with_hotspot(0.5, 0.03), 120, format);
        let threshold = 60;
        let want = match oracle(&ds, format, &BaselineQuery::Join(threshold)) {
            BaselineAnswer::Pairs(pairs) => pairs,
            other => panic!("{other:?}"),
        };
        assert!(!want.is_empty(), "join must produce pairs");
        for (config, engine) in engines() {
            let r = engine.exec1(&Query::join(threshold), &ds).unwrap();
            let mut got: Vec<(u64, u64)> =
                r.joined().iter().map(|p| (p.left_id, p.right_id)).collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, want, "join {format:?} [{config}]");
        }
    }
}

#[test]
fn skewed_join_matches_oracle_everywhere() {
    // The corridor workload of the Fig. 14 experiment, small enough
    // for the nested-loop oracle: the shape that actually exercises
    // hot-cell splitting and the per-partition probe choice.
    let mut gen = OsmGenerator::new(304)
        .with_corridor(0.8, 0.001, 0.3)
        .with_object_scale(0.3);
    gen.road_fraction = 0.0;
    gen.collection_fraction = 0.0;
    let bytes = write_geojson(&gen.generate(120));
    let ds = materialize(bytes, Format::GeoJson);
    let want = match oracle(&ds, Format::GeoJson, &BaselineQuery::Join(60)) {
        BaselineAnswer::Pairs(pairs) => pairs,
        other => panic!("{other:?}"),
    };
    assert!(!want.is_empty(), "skewed join must produce pairs");
    for (config, engine) in engines() {
        let r = engine.exec1(&Query::join(60), &ds).unwrap();
        let mut got: Vec<(u64, u64)> = r.joined().iter().map(|p| (p.left_id, p.right_id)).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, want, "skewed join [{config}]");
    }
}

#[test]
fn xml_containment_matches_oracle() {
    let region = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    let ds = dataset(305, 40, Format::OsmXml);
    let want = match oracle(&ds, Format::OsmXml, &BaselineQuery::containment(region)) {
        BaselineAnswer::Matches(ids) => ids,
        other => panic!("{other:?}"),
    };
    for threads in THREADS {
        let engine = Engine::builder().threads(threads).build();
        let r = engine.exec1(&Query::containment(region), &ds).unwrap();
        let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
        got.sort_unstable();
        assert_eq!(got, want, "xml containment threads={threads}");
    }
}

#[test]
fn fat_and_pat_modes_match_oracle() {
    let region = Mbr::new(-6.0, 44.0, 4.0, 56.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds = dataset(306, 60, format);
        let want = match oracle(&ds, format, &BaselineQuery::containment(region)) {
            BaselineAnswer::Matches(ids) => ids,
            other => panic!("{other:?}"),
        };
        for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
            let engine = Engine::builder().threads(2).mode(mode).build();
            let r = engine.exec1(&Query::containment(region), &ds).unwrap();
            let mut got: Vec<u64> = r.matches().iter().map(|m| m.id).collect();
            got.sort_unstable();
            assert_eq!(got, want, "containment {format:?} mode={mode:?}");
        }
    }
}

/// Every query-kind mix the batch suite sweeps: each kind alone, every
/// pair class, and a full 8-query mixed batch with duplicates (the
/// serving-traffic shape).
fn batch_mixes(n: u64) -> Vec<Vec<Query>> {
    let world = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    vec![
        vec![Query::containment(region)],
        vec![Query::aggregation(region)],
        vec![Query::join(n / 2)],
        vec![Query::combined(n / 2, 0.0, f64::INFINITY)],
        vec![Query::containment(region), Query::aggregation(world)],
        vec![Query::containment(region), Query::join(n / 3)],
        vec![
            // The 8-query mixed batch: all kinds, duplicate kinds with
            // different parameters, duplicate identical queries.
            Query::containment(region),
            Query::containment(world),
            Query::aggregation(region),
            Query::aggregation(world),
            Query::join(n / 2),
            Query::join(n / 4),
            Query::combined(n / 2, 0.0, f64::INFINITY),
            Query::containment(region),
        ],
    ]
}

/// `execute_batch(qs)` must be **bit-identical** to `qs.map(execute)`
/// — exact float equality, exact orders — for every query-kind mix,
/// across threads × PAT/FAT/Adaptive × uniform/adaptive partitioning,
/// on both single-pass formats.
#[test]
fn batch_execution_matches_sequential_everywhere() {
    for format in [Format::GeoJson, Format::Wkt] {
        let n = 90u64;
        let ds = dataset_with(
            OsmGenerator::new(308).with_hotspot(0.4, 0.05),
            n as usize,
            format,
        );
        for threads in THREADS {
            for target in PARTITION_TARGETS {
                for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
                    let engine = Engine::builder()
                        .threads(threads)
                        .mode(mode)
                        .cell_size(2.0)
                        .partition_target(target)
                        .build();
                    for (mi, mix) in batch_mixes(n).iter().enumerate() {
                        let want: Vec<QueryResult> =
                            mix.iter().map(|q| engine.exec1(q, &ds).unwrap()).collect();
                        let (got, stats) = engine.execb_timed(mix, &ds).unwrap();
                        let config = format!(
                            "{format:?} threads={threads} target={target} mode={mode:?} mix={mi}"
                        );
                        assert_eq!(got, want, "batch != sequential [{config}]");
                        assert_eq!(
                            stats.scan_passes, 1,
                            "every mix runs exactly one shared pass [{config}]"
                        );
                        assert_eq!(stats.queries as usize, mix.len());
                    }
                }
            }
        }
    }
}

/// The XML path (two-pass parse + node-table joins) through the batch
/// layer.
#[test]
fn batch_execution_matches_sequential_on_xml() {
    let ds = dataset(309, 40, Format::OsmXml);
    let mix = vec![
        Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0)),
        Query::aggregation(Mbr::new(-8.0, 42.0, 6.0, 58.0)),
        Query::join(20),
    ];
    for threads in THREADS {
        let engine = Engine::builder().threads(threads).cell_size(2.0).build();
        let want: Vec<QueryResult> = mix.iter().map(|q| engine.exec1(q, &ds).unwrap()).collect();
        let got = engine.execb(&mix, &ds).unwrap();
        assert_eq!(got, want, "xml batch threads={threads}");
    }

    // The XML node-table pass is cached with the partition index:
    // warm-session join-only batches run zero parse passes, same as
    // the single-pass formats.
    let engine = Engine::builder().threads(2).cell_size(2.0).build();
    let join_only = vec![Query::join(20)];
    let want: Vec<QueryResult> = join_only
        .iter()
        .map(|q| engine.exec1(q, &ds).unwrap())
        .collect();
    let session = QuerySession::new(engine, ds);
    let (cold, s_cold) = session.execb_timed(&join_only).unwrap();
    let (warm, s_warm) = session.execb_timed(&join_only).unwrap();
    assert_eq!(cold, want);
    assert_eq!(warm, want);
    assert_eq!(s_cold.scan_passes, 2, "partition pass + node-table pass");
    assert_eq!(s_warm.scan_passes, 0, "both XML passes cached");
}

/// A `QuerySession` must keep answering identically while its
/// partition-index cache warms up (second batch: zero parse passes
/// for join-only traffic).
#[test]
fn session_batches_stay_consistent_across_cache_states() {
    let n = 80u64;
    let ds = dataset_with(
        OsmGenerator::new(310).with_hotspot(0.4, 0.05),
        n as usize,
        Format::GeoJson,
    );
    for target in PARTITION_TARGETS {
        let engine = Engine::builder()
            .threads(2)
            .cell_size(2.0)
            .partition_target(target)
            .build();
        let joins = vec![
            Query::join(n / 2),
            Query::combined(n / 3, 0.0, f64::INFINITY),
        ];
        let want: Vec<QueryResult> = joins
            .iter()
            .map(|q| engine.exec1(q, &ds).unwrap())
            .collect();
        let session = QuerySession::new(engine, ds.clone());
        let (cold, s_cold) = session.execb_timed(&joins).unwrap();
        let (warm, s_warm) = session.execb_timed(&joins).unwrap();
        assert_eq!(cold, want, "cold cache, target={target}");
        assert_eq!(warm, want, "warm cache, target={target}");
        assert_eq!(s_cold.scan_passes, 1);
        assert_eq!(
            s_warm.scan_passes, 0,
            "join-only batch over a cached index re-parses nothing"
        );
        assert_eq!(session.cached_indexes(), 1);
    }
}

/// The duplicate-heavy traffic shape the scheduler's policies exist
/// for: every query kind, exact duplicates of each (different
/// submitters, identical predicates), and one scan-heavy join.
fn duplicate_heavy_mix(n: u64) -> Vec<Query> {
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    let world = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    vec![
        Query::containment(region),
        Query::aggregation(region),
        Query::containment(region), // dup of 0
        Query::join(n / 2),
        Query::aggregation(world),
        Query::combined(n / 2, 0.0, f64::INFINITY),
        Query::aggregation(region), // dup of 1
        Query::join(n / 2),         // dup of 3
        Query::containment(world),
        Query::combined(n / 2, 0.0, f64::INFINITY), // dup of 5
    ]
}

/// Every scheduling policy combination the suite sweeps: each policy
/// alone, all together, all off, and an admission configuration that
/// force-splits joins into their own waves.
fn scheduler_configs() -> Vec<(String, SchedulerConfig)> {
    let base = SchedulerConfig::default();
    vec![
        ("all-on".into(), base.clone()),
        (
            "dedup-only".into(),
            SchedulerConfig {
                cache: false,
                admission: false,
                ..base.clone()
            },
        ),
        (
            "cache-only".into(),
            SchedulerConfig {
                dedup: false,
                admission: false,
                ..base.clone()
            },
        ),
        (
            "admission-split".into(),
            SchedulerConfig {
                // A huge join prior forces every join-class query into
                // its own wave — the maximal wave split.
                join_cost_weight: 1e6,
                ..base.clone()
            },
        ),
        (
            "all-off".into(),
            SchedulerConfig {
                dedup: false,
                cache: false,
                admission: false,
                ..base
            },
        ),
    ]
}

/// Scheduled execution — predicate dedup, aggregate caching,
/// admission waves, in every combination — must stay **bit-identical**
/// to `qs.map(execute)` across threads × modes × formats, on the
/// first (cold) batch and on the repeat (cache-served) batch.
#[test]
fn scheduled_batch_execution_matches_sequential_everywhere() {
    for format in [Format::GeoJson, Format::Wkt] {
        let n = 90u64;
        let ds = dataset_with(
            OsmGenerator::new(311).with_hotspot(0.4, 0.05),
            n as usize,
            format,
        );
        let mix = duplicate_heavy_mix(n);
        for threads in THREADS {
            for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
                let engine = Engine::builder()
                    .threads(threads)
                    .mode(mode)
                    .cell_size(2.0)
                    .build();
                let want: Vec<QueryResult> =
                    mix.iter().map(|q| engine.exec1(q, &ds).unwrap()).collect();
                for (cname, config) in scheduler_configs() {
                    let scheduler = QueryScheduler::with_config(engine.clone(), config);
                    let id = scheduler.register(ds.clone());
                    let label =
                        format!("{format:?} threads={threads} mode={mode:?} config={cname}");
                    let (cold, s_cold) = scheduler.execb_timed(id, &mix).unwrap();
                    assert_eq!(cold, want, "cold scheduled != sequential [{label}]");
                    let (warm, s_warm) = scheduler.execb_timed(id, &mix).unwrap();
                    assert_eq!(warm, want, "warm scheduled != sequential [{label}]");
                    assert_eq!(s_cold.queries as usize, mix.len());
                    assert_eq!(s_cold.latencies.len(), mix.len());
                    if scheduler.config().dedup {
                        assert_eq!(s_cold.dedup_hits, 4, "[{label}]");
                    }
                    if scheduler.config().cache {
                        // Six single-pass submissions over three
                        // distinct predicates... plus the fourth
                        // distinct world-containment: all served from
                        // cache on the repeat.
                        assert_eq!(s_warm.cache_hits, 6, "[{label}]");
                    }
                }
            }
        }
    }
}

/// A mutated (updated / re-ingested) dataset bumps its generation:
/// the aggregate cache must **never** serve results computed against
/// the old bytes.
#[test]
fn scheduled_batch_cache_invalidation_on_dataset_update() {
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    for format in [Format::GeoJson, Format::Wkt] {
        let ds_v1 = dataset(312, 60, format);
        let ds_v2 = dataset(313, 85, format); // the "re-ingested" content
        let engine = Engine::builder().threads(2).cell_size(2.0).build();
        let queries = vec![
            Query::containment(region),
            Query::aggregation(region),
            Query::containment(region),
        ];
        let want_v1: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds_v1).unwrap())
            .collect();
        let want_v2: Vec<QueryResult> = queries
            .iter()
            .map(|q| engine.exec1(q, &ds_v2).unwrap())
            .collect();
        assert_ne!(want_v1, want_v2, "generations must be distinguishable");

        let scheduler = QueryScheduler::new(engine);
        let id = scheduler.register(ds_v1);
        assert_eq!(scheduler.execb(id, &queries).unwrap(), want_v1);
        // Warm every predicate into the cache.
        let (_, warm) = scheduler.execb_timed(id, &queries).unwrap();
        assert_eq!(warm.cache_hits, 3, "{format:?}: cache must be warm");

        scheduler.update(id, ds_v2).unwrap();
        let (fresh, stats) = scheduler.execb_timed(id, &queries).unwrap();
        assert_eq!(
            fresh, want_v2,
            "{format:?}: updated dataset must serve fresh results, never gen-1 cache"
        );
        assert_eq!(stats.cache_hits, 0, "{format:?}: old entries were dropped");
    }
}

/// The streaming lifecycle feeding the scheduler: ingest → seal →
/// adopt. Scheduled batches over the sealed session must equal
/// buffered sequential execution, and re-ingesting (a new seal of
/// different content) must invalidate the previous generation's
/// aggregates.
#[test]
fn scheduled_batch_over_sealed_streaming_session() {
    let n = 70usize;
    let gen_v1 = OsmGenerator::new(314).generate(n);
    let bytes_v1 = write_geojson(&gen_v1);
    let gen_v2 = OsmGenerator::new(315).generate(n + 20);
    let bytes_v2 = write_geojson(&gen_v2);
    let engine = Engine::builder().threads(2).cell_size(2.0).build();
    let mix = duplicate_heavy_mix(n as u64);
    let ds_v1 = Dataset::from_bytes(bytes_v1.clone(), Format::GeoJson);
    let ds_v2 = Dataset::from_bytes(bytes_v2.clone(), Format::GeoJson);
    let want_v1: Vec<QueryResult> = mix
        .iter()
        .map(|q| engine.exec1(q, &ds_v1).unwrap())
        .collect();
    let want_v2: Vec<QueryResult> = mix
        .iter()
        .map(|q| engine.exec1(q, &ds_v2).unwrap())
        .collect();

    // Ingest chunk by chunk, seal, adopt into the scheduler.
    let mut session = QuerySession::streaming(engine.clone(), Format::GeoJson).unwrap();
    for chunk in bytes_v1.chunks(777) {
        session.ingest_chunk(chunk).unwrap();
    }
    session.finish().unwrap();
    let scheduler = QueryScheduler::new(engine.clone());
    let id = scheduler.adopt(session).unwrap();
    let (got, stats) = scheduler.execb_timed(id, &mix).unwrap();
    assert_eq!(got, want_v1, "scheduled-over-sealed != buffered sequential");
    assert_eq!(
        stats.scan_passes, 1,
        "single-pass queries ride one shared pass; the sealed partition \
         index serves the joins with no partition pass of their own"
    );
    let (warm, _) = scheduler.execb_timed(id, &mix).unwrap();
    assert_eq!(warm, want_v1);

    // Re-ingest: a new stream seals different content; updating the
    // registration bumps the generation.
    let mut session = QuerySession::streaming(engine, Format::GeoJson).unwrap();
    for chunk in bytes_v2.chunks(1024) {
        session.ingest_chunk(chunk).unwrap();
    }
    session.finish().unwrap();
    scheduler.update(id, session.dataset().clone()).unwrap();
    let (fresh, stats) = scheduler.execb_timed(id, &mix).unwrap();
    assert_eq!(
        fresh, want_v2,
        "re-ingested stream must never serve the old generation's aggregates"
    );
    assert_eq!(stats.cache_hits, 0);
}

/// Multi-dataset batches: one call spanning several registered
/// datasets (and `Engine::execute_multi_batch`'s one-shot form) must
/// equal per-dataset sequential execution, with dedup scoped per
/// dataset.
#[test]
fn scheduled_multi_dataset_batch_matches_sequential() {
    let n = 60u64;
    let ds_g = dataset(316, n as usize, Format::GeoJson);
    let ds_w = dataset(317, 80, Format::Wkt);
    let engine = Engine::builder().threads(2).cell_size(2.0).build();
    let region = Mbr::new(-8.0, 42.0, 6.0, 58.0);
    let qa = Query::containment(region);
    let qb = Query::aggregation(region);
    let qj = Query::join(n / 2);

    // Interleaved submission order across the two datasets, with a
    // cross-dataset "duplicate" (same predicate, different dataset —
    // must NOT dedup).
    let scheduler = QueryScheduler::new(engine.clone());
    let g = scheduler.register(ds_g.clone());
    let w = scheduler.register(ds_w.clone());
    let batch = vec![
        ScheduledQuery::new(g, qa.clone()),
        ScheduledQuery::new(w, qa.clone()),
        ScheduledQuery::new(g, qj.clone()),
        ScheduledQuery::new(w, qb.clone()),
        ScheduledQuery::new(g, qa.clone()), // true dup (same dataset)
    ];
    let want = vec![
        engine.exec1(&qa, &ds_g).unwrap(),
        engine.exec1(&qa, &ds_w).unwrap(),
        engine.exec1(&qj, &ds_g).unwrap(),
        engine.exec1(&qb, &ds_w).unwrap(),
        engine.exec1(&qa, &ds_g).unwrap(),
    ];
    let out = scheduler
        .run_multi(&batch, &ExecOptions::new().timed())
        .unwrap();
    let stats = out.scheduler.clone().unwrap();
    let got = out.collapse().unwrap();
    assert_eq!(got, want, "multi-dataset scheduled != sequential");
    assert_eq!(
        stats.dedup_hits, 1,
        "identical predicates on different datasets are different work"
    );
    assert_ne!(got[0], got[1], "the two datasets answer differently");

    // The engine-level lift returns the same results grouped.
    let groups: Vec<(&Dataset, &[Query])> = vec![
        (&ds_g, std::slice::from_ref(&qa)),
        (&ds_w, std::slice::from_ref(&qb)),
    ];
    // Wrapper equivalence: the deprecated engine-level lift must stay
    // bit-identical to the scheduler path above.
    #[allow(deprecated)]
    let grouped = engine.execute_multi_batch(&groups).unwrap();
    assert_eq!(grouped.len(), 2);
    assert_eq!(grouped[0][0], engine.exec1(&qa, &ds_g).unwrap());
    assert_eq!(grouped[1][0], engine.exec1(&qb, &ds_w).unwrap());
}

/// The XML path (two-pass parse, node-table joins) through the
/// scheduler.
#[test]
fn scheduled_batch_matches_sequential_on_xml() {
    let n = 40u64;
    let ds = dataset(318, n as usize, Format::OsmXml);
    let engine = Engine::builder().threads(2).cell_size(2.0).build();
    let mix = duplicate_heavy_mix(n);
    let want: Vec<QueryResult> = mix.iter().map(|q| engine.exec1(q, &ds).unwrap()).collect();
    let scheduler = QueryScheduler::new(engine);
    let id = scheduler.register(ds);
    let (cold, _) = scheduler.execb_timed(id, &mix).unwrap();
    let (warm, s_warm) = scheduler.execb_timed(id, &mix).unwrap();
    assert_eq!(cold, want, "xml scheduled != sequential");
    assert_eq!(warm, want, "xml warm scheduled != sequential");
    assert!(s_warm.cache_hits > 0);
}

#[test]
fn bulk_scanner_matches_bytewise_reference() {
    // The GeoJSON structural lexer over a real serialised dataset:
    // `ByteDfa::run` (SWAR skip classes) must emit exactly the action
    // tape of the byte-at-a-time reference from every start state.
    let bytes = write_geojson(&OsmGenerator::new(307).generate(100));
    let dfa = atgis_formats::geojson::lexer::lexer();
    let start = dfa.start_state();
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    let f_fin = dfa.run(start, &bytes, 0, |action, pos| fast.push((action, pos)));
    let s_fin = dfa.run_bytewise(start, &bytes, 0, |action, pos| slow.push((action, pos)));
    assert_eq!(f_fin, s_fin, "final states diverge");
    assert_eq!(fast.len(), slow.len(), "action tape lengths diverge");
    assert_eq!(fast, slow, "action tapes diverge");
    assert!(!fast.is_empty(), "the lexer must emit actions");

    // And from every state, over a chunk boundary, as FAT blocks do.
    let mid = bytes.len() / 2;
    for s in 0..dfa.num_states() as u8 {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let ff = dfa.run(s, &bytes[mid..], mid as u64, |a, p| fast.push((a, p)));
        let fs = dfa.run_bytewise(s, &bytes[mid..], mid as u64, |a, p| slow.push((a, p)));
        assert_eq!(ff, fs, "state {s}: finals diverge");
        assert_eq!(fast, slow, "state {s}: tapes diverge");
    }
}
