//! Engine-level property tests: the paper's central correctness claim
//! is that associative (parallel, speculative) execution is *exact* —
//! any block count, thread count, mode or store layout must produce
//! byte-identical results.

use atgis::engine::{PartitionPhase, StoreKind};
use atgis::{Dataset, Engine, FilterStrategy, Metric, Query};
use atgis_datagen::{write_geojson, write_wkt, OsmGenerator, SynthConfig};
use atgis_formats::{Format, Mode};
use atgis_geometry::{DistanceModel, Mbr};
use atgis_tests::RunExt;
use proptest::prelude::*;

fn geojson_dataset(seed: u64, n: usize) -> Dataset {
    Dataset::from_bytes(
        write_geojson(&OsmGenerator::new(seed).generate(n)),
        Format::GeoJson,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn containment_invariant_under_execution_config(
        seed in 0u64..50,
        threads in 1usize..5,
        mult in 1usize..7,
        fat in proptest::bool::ANY,
    ) {
        let ds = geojson_dataset(seed, 60);
        let region = Mbr::new(-8.0, 42.0, 4.0, 56.0);
        let q = Query::containment(region);
        let reference = Engine::builder().build().exec1(&q, &ds).unwrap();
        let engine = Engine::builder()
            .threads(threads)
            .block_multiplier(mult)
            .mode(if fat { Mode::Fat } else { Mode::Pat })
            .build();
        let got = engine.exec1(&q, &ds).unwrap();
        prop_assert_eq!(got.matches(), reference.matches());
    }

    #[test]
    fn aggregation_invariant_under_strategy_and_blocks(
        seed in 0u64..30,
        mult in 1usize..9,
        streaming in proptest::bool::ANY,
    ) {
        let ds = geojson_dataset(seed + 100, 50);
        let region = Mbr::new(-8.0, 42.0, 4.0, 56.0);
        let strategy = if streaming {
            FilterStrategy::Streaming
        } else {
            FilterStrategy::Buffered
        };
        let q = Query::aggregation_with(
            region,
            vec![Metric::Area, Metric::Perimeter, Metric::Count],
            DistanceModel::Spherical,
            strategy,
        );
        let reference = Engine::builder()
            .build()
            .exec1(&Query::aggregation_with(
                region,
                vec![Metric::Area, Metric::Perimeter, Metric::Count],
                DistanceModel::Spherical,
                FilterStrategy::Buffered,
            ), &ds)
            .unwrap()
            .aggregate()
            .unwrap();
        let got = Engine::builder()
            .block_multiplier(mult)
            .build()
            .exec1(&q, &ds)
            .unwrap()
            .aggregate()
            .unwrap();
        prop_assert_eq!(got.count, reference.count);
        prop_assert!((got.total_area - reference.total_area).abs()
            <= 1e-6 * reference.total_area.abs().max(1.0));
        prop_assert!((got.total_perimeter - reference.total_perimeter).abs()
            <= 1e-6 * reference.total_perimeter.abs().max(1.0));
    }

    #[test]
    fn join_invariant_under_grid_and_store(
        seed in 0u64..20,
        cell in prop::sample::select(vec![0.5f64, 1.0, 2.0, 4.0]),
        list_store in proptest::bool::ANY,
        separate in proptest::bool::ANY,
    ) {
        let ds = geojson_dataset(seed + 200, 40);
        let q = Query::join(20);
        let reference = Engine::builder()
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .cell_size(1.0)
            .build()
            .exec1(&q, &ds)
            .unwrap();
        let engine = Engine::builder()
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .cell_size(cell)
            .store(if list_store { StoreKind::List } else { StoreKind::Array })
            .partition_phase(if separate {
                PartitionPhase::Separate
            } else {
                PartitionPhase::Associative
            })
            .build();
        let got = engine.exec1(&q, &ds).unwrap();
        prop_assert_eq!(got.joined(), reference.joined());
    }

    #[test]
    fn wkt_fat_block_counts_agree(seed in 0u64..20, mult in 1usize..10) {
        let gen = OsmGenerator::new(seed + 300).generate(30);
        let ds = Dataset::from_bytes(write_wkt(&gen), Format::Wkt);
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let got = Engine::builder()
            .mode(Mode::Fat)
            .block_multiplier(mult)
            .build()
            .exec1(&q, &ds)
            .unwrap();
        prop_assert_eq!(got.matches().len(), 30);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Split-invariance of the vectorised bulk scanner: for random
    /// GeoJSON-shaped inputs and random block boundaries, the merged
    /// fragments' token tapes are byte-identical to a single-threaded
    /// reference scan of the whole input — and to the seed's
    /// byte-at-a-time lexing path.
    #[test]
    fn bulk_scanner_split_invariance(
        seed in 0u64..40,
        objects in 1usize..20,
        nblocks in 1usize..12,
    ) {
        use atgis_formats::geojson::lexer;
        use atgis_transducer::merge::merge_tree;

        let input = write_geojson(&OsmGenerator::new(seed + 7000).generate(objects));
        let chunk = input.len().div_ceil(nblocks).max(1);

        // Parallel-shaped: vectorised speculative scan per block,
        // fragments merged as a tree (the executor's merge shape).
        let frags: Vec<_> = input
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| lexer::lex_block(c, (i * chunk) as u64))
            .collect();
        let merged = merge_tree(frags);
        let (fin, tokens) = merged.resolve(lexer::STATE_OUT).unwrap();

        // Reference: one sequential scan of the whole input.
        let (fin_seq, tokens_seq) = lexer::lex_known(&input, 0, lexer::STATE_OUT);
        prop_assert_eq!(fin, fin_seq);
        prop_assert_eq!(&tokens, &tokens_seq);

        // And the seed byte-loop produces the same fragment per block.
        let frags_bytewise: Vec<_> = input
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| lexer::lex_block_bytewise(c, (i * chunk) as u64))
            .collect();
        let merged_bytewise = merge_tree(frags_bytewise);
        let (fin_b, tokens_b) = merged_bytewise.resolve(lexer::STATE_OUT).unwrap();
        prop_assert_eq!(fin, fin_b);
        prop_assert_eq!(&tokens, &tokens_b);
    }

    /// Random cut points (not just equal chunks) across random raw
    /// bytes drawn from the JSON structural alphabet.
    #[test]
    fn bulk_scanner_random_cut_invariance(
        input in prop::collection::vec(
            prop::sample::select(br#"{}[],:"\ab1.5 e-"#.to_vec()), 0..300),
        cut in 0usize..300,
    ) {
        use atgis_formats::geojson::lexer;
        use atgis_transducer::Mergeable;

        let cut = cut.min(input.len());
        let merged = lexer::lex_block(&input[..cut], 0)
            .merge(lexer::lex_block(&input[cut..], cut as u64));
        let whole = lexer::lex_block(&input, 0);
        prop_assert_eq!(merged, whole);
    }
}

#[test]
fn synth_skew_datasets_parse_in_both_modes() {
    for sigma in [0.5, 2.0, 4.0] {
        let ds = SynthConfig {
            objects: 40,
            sigma,
            mu: 3.0,
            seed: 77,
            multipolygon_fraction: 0.2,
        }
        .generate();
        let data = Dataset::from_bytes(write_geojson(&ds), Format::GeoJson);
        let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
        let pat = Engine::builder()
            .mode(Mode::Pat)
            .build()
            .exec1(&q, &data)
            .unwrap();
        let fat = Engine::builder()
            .mode(Mode::Fat)
            .threads(3)
            .build()
            .exec1(&q, &data)
            .unwrap();
        assert_eq!(pat.matches(), fat.matches(), "sigma={sigma}");
        assert_eq!(pat.matches().len(), 40);
    }
}

#[test]
fn sort_batch_size_does_not_change_join_results() {
    let ds = geojson_dataset(900, 60);
    let q = Query::join(30);
    let reference = Engine::builder()
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .build()
        .exec1(&q, &ds)
        .unwrap();
    for batch in [1usize, 7, 64, 100_000] {
        let got = Engine::builder()
            .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
            .sort_batch(batch)
            .build()
            .exec1(&q, &ds)
            .unwrap();
        assert_eq!(got.joined(), reference.joined(), "sort_batch={batch}");
    }
}

#[test]
fn empty_dataset_is_handled_everywhere() {
    let empty_json = Dataset::from_bytes(
        br#"{"type":"FeatureCollection","features":[]}"#.to_vec(),
        Format::GeoJson,
    );
    let empty_wkt = Dataset::from_bytes(Vec::new(), Format::Wkt);
    let e = Engine::builder().threads(2).build();
    let region = Mbr::new(-180.0, -90.0, 180.0, 90.0);
    for ds in [&empty_json, &empty_wkt] {
        assert!(e
            .exec1(&Query::containment(region), ds)
            .unwrap()
            .matches()
            .is_empty());
        assert_eq!(
            e.exec1(&Query::aggregation(region), ds)
                .unwrap()
                .aggregate()
                .unwrap()
                .count,
            0
        );
        assert!(e.exec1(&Query::join(10), ds).unwrap().joined().is_empty());
    }
}

#[test]
fn malformed_input_reports_errors_not_panics() {
    let garbage = Dataset::from_bytes(b"this is not geojson at all {{{".to_vec(), Format::GeoJson);
    let e = Engine::builder().threads(2).build();
    let q = Query::containment(Mbr::new(-1.0, -1.0, 1.0, 1.0));
    // Garbage contains no feature marker: PAT yields zero features
    // (nothing to parse); truncated real features must error.
    let _ = e.exec1(&q, &garbage);
    let truncated = Dataset::from_bytes(
        br#"{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordi"#.to_vec(),
        Format::GeoJson,
    );
    let r = e.exec1(&q, &truncated);
    assert!(r.is_err(), "truncated feature must surface an error");
    let bad_wkt = Dataset::from_bytes(b"1\tPOLYGON((broken\t\n".to_vec(), Format::Wkt);
    assert!(e.exec1(&q, &bad_wkt).is_err());
}

#[test]
fn combined_query_upper_bounded_by_plain_join() {
    let ds = geojson_dataset(901, 80);
    let e = Engine::builder()
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .build();
    let join_pairs = e.exec1(&Query::join(40), &ds).unwrap().joined().len() as u64;
    match e
        .exec1(&Query::combined(40, 0.0, f64::INFINITY), &ds)
        .unwrap()
    {
        atgis::QueryResult::Combined { pairs, .. } => {
            assert_eq!(pairs, join_pairs, "no-op filters keep all pairs")
        }
        other => panic!("{other:?}"),
    }
}
