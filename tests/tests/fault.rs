//! Fault-injection differentials (gated on the `fault-injection`
//! feature): with faults armed, un-cancelled queries must still be
//! **bit-identical** to the clean oracle; injected panics must be
//! contained to the failing wave while the engine, pool, and
//! scheduler stay serviceable; and cancellation injected at arbitrary
//! chunk boundaries must always resolve to "oracle-identical" or
//! "cleanly cancelled" — never a hang or a corrupt result.
//!
//! Seeds are randomized per run and printed (`fault seed: N`) so a
//! failing CI run is reproducible with `ATGIS_FAULT_SEED=N`.

#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use atgis::fault::{self, CancelAfterChunks, FaultAction, FaultInjector};
use atgis::{
    CancelToken, Dataset, Engine, Error, ExecOptions, Query, QueryError, QueryResult,
    QueryScheduler, SliceChunkSource,
};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use atgis_tests::{RunExt, SchedRunExt, StreamRunExt};

/// Failpoints are process-global: serialise every test in this binary
/// so one test's armed panic cannot fire inside another's clean scan.
static GATE: Mutex<()> = Mutex::new(());

fn serialised() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-run randomized seed, printed for reproducibility and
/// overridable with `ATGIS_FAULT_SEED`.
fn run_seed(test: &str) -> u64 {
    let seed = match std::env::var("ATGIS_FAULT_SEED") {
        Ok(s) => s.parse().expect("ATGIS_FAULT_SEED must be a u64"),
        Err(_) => {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .expect("clock before epoch")
                .subsec_nanos() as u64
                ^ 0x5eed_5eed
        }
    };
    eprintln!("{test}: fault seed: {seed}");
    seed
}

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).cell_size(2.0).build()
}

fn bytes(seed: u64, n: usize) -> Vec<u8> {
    write_geojson(&OsmGenerator::new(seed).generate(n))
}

fn queries(n_objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
        Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
        Query::join(n_objects / 2),
        Query::combined(n_objects / 2, 0.0, f64::INFINITY),
    ]
}

#[test]
fn faulty_stream_is_bit_identical_with_retries_recorded() {
    let _gate = serialised();
    let seed = run_seed("faulty_stream_is_bit_identical_with_retries_recorded");
    let data = bytes(2101, 60);
    let e = engine(2);
    let qs = queries(60);
    let ds = Dataset::from_bytes(data.clone(), Format::GeoJson);
    let oracle: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();

    // Small chunks → many read calls → the 20% transient-error rate is
    // statistically certain to fire at least once for any seed; the
    // consecutive-injection cap keeps every run inside the retry
    // budget, so completion is guaranteed, not probabilistic.
    let injector = FaultInjector::new(seed);
    let mut source = injector.faulty_source(SliceChunkSource::new(&data, 64));
    let (results, _batch, stream) = e.streamb_timed(&qs, &mut source, Format::GeoJson).unwrap();
    assert_eq!(results, oracle, "faults must never alter results");
    assert!(
        source.injected_errors() > 0,
        "harness injected nothing (seed {seed})"
    );
    assert_eq!(
        stream.retries,
        source.injected_errors(),
        "every injected transient error is one recorded retry (seed {seed})"
    );
}

#[test]
fn slow_chunks_change_timing_not_results() {
    let _gate = serialised();
    let seed = run_seed("slow_chunks_change_timing_not_results");
    let data = bytes(2102, 40);
    let e = engine(2);
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let oracle = e
        .exec1(&q, &Dataset::from_bytes(data.clone(), Format::GeoJson))
        .unwrap();
    let mut source = FaultInjector::new(seed)
        .faulty_source(SliceChunkSource::new(&data, 128))
        .with_transient_errors(0)
        .with_slow_chunks(500, Duration::from_micros(200));
    let got = e.stream1(&q, &mut source, Format::GeoJson).unwrap();
    assert_eq!(got, oracle);
    assert!(
        source.injected_slow_chunks() > 0,
        "seed {seed} stalled nothing"
    );
}

#[test]
fn armed_executor_panic_is_contained_to_the_batch() {
    let _gate = serialised();
    fault::disarm_all();
    let e = engine(2);
    let ds = Dataset::from_bytes(bytes(2103, 60), Format::GeoJson);
    let qs = queries(60);
    let oracle: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();

    fault::arm(
        "executor.block",
        FaultAction::Panic("injected executor panic".into()),
    );
    // The shared scan dies, so the whole batch reports the panic — as
    // a structured error, not an unwind, and without poisoning the
    // pool or any engine lock.
    match e.execb(&qs, &ds) {
        Err(Error::TaskPanicked(m)) => {
            assert!(m.contains("injected executor panic"), "payload lost: {m}")
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
    let hits = fault::disarm("executor.block");
    assert!(hits > 0, "the failpoint never fired");

    // Disarmed: the same engine serves the same batch bit-identically.
    assert_eq!(e.execb(&qs, &ds).unwrap(), oracle);
}

#[test]
fn scheduler_isolates_an_armed_panic_and_counts_it() {
    let _gate = serialised();
    fault::disarm_all();
    let e = engine(2);
    let scheduler = QueryScheduler::new(e.clone());
    let ds = Dataset::from_bytes(bytes(2104, 60), Format::GeoJson);
    let id = scheduler.register(ds.clone());
    let qs = queries(60);
    let oracle: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();

    fault::arm(
        "executor.block",
        FaultAction::Panic("injected wave panic".into()),
    );
    let (results, stats) = scheduler
        .run(id, &qs, &ExecOptions::new().isolated().timed())
        .map(|o| (o.outcomes, o.scheduler.unwrap()))
        .unwrap();
    fault::disarm("executor.block");
    assert_eq!(results.len(), qs.len());
    for (i, r) in results.iter().enumerate() {
        match r {
            Err(QueryError::Panicked(m)) => {
                assert!(m.contains("injected wave panic"), "query {i}: payload {m}")
            }
            other => panic!("query {i}: expected Panicked, got {other:?}"),
        }
    }
    assert_eq!(stats.task_panics, qs.len() as u64);

    // The scheduler entry survives: the disarmed rerun is
    // bit-identical to solo execution.
    assert_eq!(scheduler.execb(id, &qs).unwrap(), oracle);
}

#[test]
fn seeded_probabilistic_panics_either_fail_cleanly_or_match_oracle() {
    let _gate = serialised();
    fault::disarm_all();
    let seed = run_seed("seeded_probabilistic_panics_either_fail_cleanly_or_match_oracle");
    let data = bytes(2105, 40);
    let e = engine(2);
    let q = Query::aggregation(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let oracle = e
        .exec1(&q, &Dataset::from_bytes(data.clone(), Format::GeoJson))
        .unwrap();

    let injector = FaultInjector::new(seed);
    injector.arm_random_panic("stream.region", 200);
    let mut clean_runs = 0u32;
    let mut panicked_runs = 0u32;
    for _ in 0..12 {
        let mut source = SliceChunkSource::new(&data, 256);
        match e.stream1(&q, &mut source, Format::GeoJson) {
            Ok(result) => {
                assert_eq!(result, oracle);
                clean_runs += 1;
            }
            Err(Error::TaskPanicked(_)) => panicked_runs += 1,
            Err(other) => panic!("unexpected error under injection: {other:?}"),
        }
    }
    fault::disarm("stream.region");
    eprintln!("seed {seed}: {clean_runs} clean runs, {panicked_runs} injected panics");
    // Whatever the split, the engine must end the gauntlet healthy.
    let mut source = SliceChunkSource::new(&data, 256);
    assert_eq!(e.stream1(&q, &mut source, Format::GeoJson).unwrap(), oracle);
}

#[test]
fn cancellation_sweep_with_harness_source_never_hangs() {
    let _gate = serialised();
    let seed = run_seed("cancellation_sweep_with_harness_source_never_hangs");
    let data = bytes(2106, 40);
    let chunk_len = 256;
    let n_chunks = data.len().div_ceil(chunk_len) as u64;
    let e = engine(2);
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let oracle = e
        .exec1(&q, &Dataset::from_bytes(data.clone(), Format::GeoJson))
        .unwrap();

    // Every boundary once, then a handful of random boundaries layered
    // on top of a faulty (retrying) source — the worst case: transient
    // errors and cancellation racing on the same stream.
    let mut rng = FaultInjector::new(seed).rng();
    let deterministic = 0..=n_chunks;
    let randomized = (0..8).map(|_| rng.below(n_chunks + 1));
    let mut cancelled = 0u64;
    for after in deterministic.chain(randomized) {
        let token = CancelToken::new();
        let faulty =
            FaultInjector::new(seed ^ after).faulty_source(SliceChunkSource::new(&data, chunk_len));
        let mut source = CancelAfterChunks::new(faulty, token.clone(), after);
        match e
            .run_streaming(
                std::slice::from_ref(&q),
                &mut source,
                Format::GeoJson,
                &ExecOptions::new().cancellable(&token),
            )
            .and_then(|o| o.into_single())
        {
            Ok(result) => assert_eq!(result, oracle, "boundary {after} (seed {seed})"),
            Err(Error::Cancelled) => cancelled += 1,
            Err(other) => panic!("boundary {after} (seed {seed}): {other:?}"),
        }
    }
    assert!(
        cancelled > 0,
        "sweep observed no cancellation (seed {seed})"
    );
    let mut source = SliceChunkSource::new(&data, chunk_len);
    assert_eq!(e.stream1(&q, &mut source, Format::GeoJson).unwrap(), oracle);
}
