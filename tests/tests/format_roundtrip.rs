//! Round-trip integration tests: datasets produced by `atgis-datagen`
//! must parse back through every `atgis-formats` path (PAT and FAT,
//! all three serialisations) with identical geometry.

use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator, SynthConfig};
use atgis_formats::{parse_all, Format, MetadataFilter, Mode};

#[test]
fn geojson_pat_roundtrip() {
    let ds = OsmGenerator::new(100).generate(200);
    let bytes = write_geojson(&ds);
    let features = parse_all(&bytes, Format::GeoJson, Mode::Pat, &MetadataFilter::All).unwrap();
    assert_eq!(features.len(), ds.objects.len());
    for (f, o) in features.iter().zip(&ds.objects) {
        assert_eq!(f.id, o.id);
        assert_eq!(f.geometry.num_points(), o.geometry.num_points());
        let d = (f.geometry.area() - o.geometry.area()).abs();
        assert!(d < 1e-6, "area drift {d} on object {}", o.id);
    }
}

#[test]
fn geojson_fat_matches_pat() {
    let ds = OsmGenerator::new(101).generate(150);
    let bytes = write_geojson(&ds);
    let pat = parse_all(&bytes, Format::GeoJson, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(&bytes, Format::GeoJson, Mode::Fat, &MetadataFilter::All).unwrap();
    assert_eq!(pat, fat);
}

#[test]
fn wkt_pat_and_fat_roundtrip() {
    let ds = OsmGenerator::new(102).generate(150);
    let bytes = write_wkt(&ds);
    let pat = parse_all(&bytes, Format::Wkt, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(&bytes, Format::Wkt, Mode::Fat, &MetadataFilter::All).unwrap();
    assert_eq!(pat.len(), ds.objects.len());
    assert_eq!(pat, fat);
    for (f, o) in pat.iter().zip(&ds.objects) {
        assert_eq!(f.id, o.id);
        assert_eq!(f.geometry.num_points(), o.geometry.num_points());
    }
}

#[test]
fn osm_xml_roundtrip_preserves_geometry() {
    let ds = OsmGenerator::new(103).generate(100);
    let bytes = write_osm_xml(&ds);
    let features = parse_all(&bytes, Format::OsmXml, Mode::Pat, &MetadataFilter::All).unwrap();
    // Collections are flattened into several ways, so counts can grow;
    // every non-collection object must be recoverable by id.
    for o in &ds.objects {
        use atgis_geometry::Geometry;
        if matches!(o.geometry, Geometry::Collection(_)) {
            continue;
        }
        let f = features
            .iter()
            .find(|f| f.id == o.id)
            .unwrap_or_else(|| panic!("object {} missing from XML round-trip", o.id));
        let d = (f.geometry.area() - o.geometry.area()).abs();
        assert!(d < 1e-6, "area drift {d} on object {}", o.id);
    }
}

#[test]
fn synth_dataset_roundtrips_through_geojson() {
    let ds = SynthConfig {
        objects: 60,
        sigma: 2.0,
        ..Default::default()
    }
    .generate();
    let bytes = write_geojson(&ds);
    let pat = parse_all(&bytes, Format::GeoJson, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(&bytes, Format::GeoJson, Mode::Fat, &MetadataFilter::All).unwrap();
    assert_eq!(pat.len(), 60);
    assert_eq!(pat, fat);
}

#[test]
fn cross_format_geometry_agreement() {
    // The same dataset serialised as GeoJSON and WKT must parse to the
    // same geometries (XML differs only for collections).
    let ds = OsmGenerator::new(104).generate(80);
    let geojson = parse_all(
        &write_geojson(&ds),
        Format::GeoJson,
        Mode::Pat,
        &MetadataFilter::All,
    )
    .unwrap();
    let wkt = parse_all(
        &write_wkt(&ds),
        Format::Wkt,
        Mode::Pat,
        &MetadataFilter::All,
    )
    .unwrap();
    assert_eq!(geojson.len(), wkt.len());
    for (g, w) in geojson.iter().zip(&wkt) {
        assert_eq!(g.id, w.id);
        assert_eq!(g.geometry, w.geometry);
    }
}
