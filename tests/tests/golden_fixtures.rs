//! Golden-fixture round-trips: small checked-in GeoJSON / WKT /
//! OSM-XML files with known contents, parsed by both execution paths
//! (PAT's marker-split block parser and FAT's speculative parser).
//! Both must yield identical feature counts and MBRs, and those must
//! match the hand-computed expectations pinned here — guarding the
//! parsers against silent dialect drift.

use atgis_formats::{parse_all, Format, MetadataFilter, Mode, RawFeature};
use atgis_geometry::Mbr;

const GEOJSON: &[u8] = include_bytes!("../fixtures/small.geojson");
const WKT: &[u8] = include_bytes!("../fixtures/small.wkt");
const OSM: &[u8] = include_bytes!("../fixtures/small.osm");

/// `(id, mbr)` pairs sorted by id.
fn summarize(features: &[RawFeature]) -> Vec<(u64, Mbr)> {
    let mut v: Vec<(u64, Mbr)> = features.iter().map(|f| (f.id, f.geometry.mbr())).collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

/// The four objects all three fixtures encode.
fn expected() -> Vec<(u64, Mbr)> {
    vec![
        (1, Mbr::new(0.0, 0.0, 2.0, 2.0)),
        (2, Mbr::new(5.5, -3.25, 5.5, -3.25)),
        (3, Mbr::new(-1.0, -1.0, 3.0, 1.0)),
        (4, Mbr::new(10.0, 10.0, 13.0, 11.0)),
    ]
}

fn assert_matches(got: &[(u64, Mbr)], want: &[(u64, Mbr)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: feature count");
    for ((gid, gm), (wid, wm)) in got.iter().zip(want) {
        assert_eq!(gid, wid, "{label}: id");
        for (g, w) in [
            (gm.min_x, wm.min_x),
            (gm.min_y, wm.min_y),
            (gm.max_x, wm.max_x),
            (gm.max_y, wm.max_y),
        ] {
            assert!(
                (g - w).abs() < 1e-9,
                "{label}: id {gid} mbr {gm:?} vs {wm:?}"
            );
        }
    }
}

#[test]
fn geojson_fixture_fast_and_fat_agree_with_golden() {
    let pat = parse_all(GEOJSON, Format::GeoJson, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(GEOJSON, Format::GeoJson, Mode::Fat, &MetadataFilter::All).unwrap();
    let want = expected();
    assert_matches(&summarize(&pat), &want, "geojson/pat");
    assert_matches(&summarize(&fat), &want, "geojson/fat");
    assert_eq!(summarize(&pat), summarize(&fat), "fast vs fat path");
}

#[test]
fn wkt_fixture_fast_and_fat_agree_with_golden() {
    let pat = parse_all(WKT, Format::Wkt, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(WKT, Format::Wkt, Mode::Fat, &MetadataFilter::All).unwrap();
    let want = expected();
    assert_matches(&summarize(&pat), &want, "wkt/pat");
    assert_matches(&summarize(&fat), &want, "wkt/fat");
    assert_eq!(summarize(&pat), summarize(&fat), "fast vs fat path");
}

#[test]
fn osm_fixture_agrees_with_golden() {
    // XML has a single parse path; both modes must route to it and
    // agree with the golden expectations. The multipolygon relation's
    // member ways (ids ≥ 2e9) are consumed by the relation and not
    // reported standalone.
    let pat = parse_all(OSM, Format::OsmXml, Mode::Pat, &MetadataFilter::All).unwrap();
    let fat = parse_all(OSM, Format::OsmXml, Mode::Fat, &MetadataFilter::All).unwrap();
    let want = expected()
        .into_iter()
        .filter(|(id, _)| *id != 2) // the lone point has no XML form
        .collect::<Vec<_>>();
    let strip = |fs: &[RawFeature]| {
        let mut v = summarize(fs);
        v.retain(|(id, _)| *id < 2_000_000_000);
        v
    };
    assert_matches(&strip(&pat), &want, "osm");
    assert_eq!(strip(&pat), strip(&fat), "modes route to the same parser");
}

#[test]
fn formats_agree_with_each_other_on_the_fixture() {
    let g = parse_all(GEOJSON, Format::GeoJson, Mode::Pat, &MetadataFilter::All).unwrap();
    let w = parse_all(WKT, Format::Wkt, Mode::Pat, &MetadataFilter::All).unwrap();
    assert_eq!(summarize(&g), summarize(&w), "geojson vs wkt fixture");
}
