//! End-to-end tests for the XPath-style metadata query language
//! (§4.4) pushed into the parsing stage of both GeoJSON modes.

use atgis_formats::{parse_all, Format, MetadataFilter, Mode, PathQuery};

const DOC: &str = concat!(
    r#"{"type":"FeatureCollection","features":["#,
    r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,1.0]},"id":1,"properties":{"building":"yes","levels":4,"address":{"city":"London"}}},"#,
    r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[2.0,2.0]},"id":2,"properties":{"building":"no","levels":1}},"#,
    r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[3.0,3.0]},"id":3,"properties":{"highway":"path"}}"#,
    r#"]}"#
);

fn run(query: &str, mode: Mode) -> Vec<u64> {
    let filter = MetadataFilter::Path(PathQuery::parse(query).unwrap());
    parse_all(DOC.as_bytes(), Format::GeoJson, mode, &filter)
        .unwrap()
        .iter()
        .map(|f| f.id)
        .collect()
}

#[test]
fn existence_query_filters_features() {
    assert_eq!(run("building", Mode::Pat), vec![1, 2]);
    assert_eq!(run("highway", Mode::Pat), vec![3]);
    assert_eq!(run("missing", Mode::Pat), Vec::<u64>::new());
}

#[test]
fn equality_query_filters_features() {
    assert_eq!(run(r#"building = "yes""#, Mode::Pat), vec![1]);
    assert_eq!(run(r#"building != "yes""#, Mode::Pat), vec![2]);
}

#[test]
fn numeric_query_filters_features() {
    assert_eq!(run("levels >= 2", Mode::Pat), vec![1]);
    assert_eq!(run("levels < 2", Mode::Pat), vec![2]);
}

#[test]
fn nested_path_query_filters_features() {
    assert_eq!(run(r#"address.city = "London""#, Mode::Pat), vec![1]);
    assert_eq!(
        run(r#"address.city = "Paris""#, Mode::Pat),
        Vec::<u64>::new()
    );
}

#[test]
fn fat_mode_agrees_with_pat_mode() {
    for q in [
        "building",
        r#"building = "yes""#,
        "levels >= 2",
        r#"address.city = "London""#,
    ] {
        assert_eq!(run(q, Mode::Pat), run(q, Mode::Fat), "query {q}");
    }
}

#[test]
fn wkt_single_segment_fallback() {
    // WKT tags are flat k=v pairs; single-segment string queries work.
    let wkt = "1\tPOINT(1 1)\tbuilding=yes;levels=4\n2\tPOINT(2 2)\tbuilding=no\n";
    let filter = MetadataFilter::Path(PathQuery::parse(r#"building = "yes""#).unwrap());
    let ids: Vec<u64> = parse_all(wkt.as_bytes(), Format::Wkt, Mode::Pat, &filter)
        .unwrap()
        .iter()
        .map(|f| f.id)
        .collect();
    assert_eq!(ids, vec![1]);
}
