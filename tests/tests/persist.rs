//! Persistence-boundary differentials: a snapshot written by one
//! engine and restored by a fresh one (a simulated process restart)
//! must serve results **bit-identical** to a cold parse across every
//! format × parse mode × thread count × shard count × query class —
//! and a restored index must answer join-class batches with **zero**
//! parse passes. On top of the identity matrix this suite tortures
//! the on-disk format: truncation at every section boundary, seeded
//! bit flips over the whole file, version skew and magic corruption
//! must each yield a structured [`PersistError`] and a clean
//! cold-parse fallback — never a panic, never a wrong answer. Under
//! `--features fault-injection` the failpoints `persist.write.0`,
//! `persist.write.1` and `persist.read.0` prove the atomic
//! tmp-file + rename protocol: a spill killed at any stage leaves no
//! snapshot and no orphan, and a poisoned read degrades to cold.
//!
//! Reproduce a torture failure with `ATGIS_FAULT_SEED=<seed>` — the
//! seed is printed by every seeded run.

use std::path::{Path, PathBuf};

use atgis::persist::{snapshot, SNAPSHOT_VERSION};
use atgis::{
    Dataset, Engine, ExecOptions, PersistError, PersistStore, Query, QueryScheduler, QuerySession,
};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;

/// Spatially coherent dataset (sorted by centroid longitude, like a
/// real regional export) so shard MBR pruning is in play and the
/// cached `ShardSet` probes carried by the snapshot matter.
fn sorted_dataset(seed: u64, objects: usize, format: Format) -> Dataset {
    let mut ds = OsmGenerator::new(seed).generate(objects);
    ds.objects.sort_by(|a, b| {
        let ax = a.geometry.mbr().center().x;
        let bx = b.geometry.mbr().center().x;
        ax.partial_cmp(&bx).expect("finite centroids")
    });
    let bytes = match format {
        Format::GeoJson => write_geojson(&ds),
        Format::Wkt => write_wkt(&ds),
        Format::OsmXml => write_osm_xml(&ds),
    };
    Dataset::from_bytes(bytes, format)
}

fn engine(threads: usize, mode: Mode, store: Option<&Path>) -> Engine {
    let mut b = Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0);
    if let Some(root) = store {
        b = b.persist_path(root);
    }
    b.build()
}

/// A fresh store root under the harness tmpdir, cleared of any debris
/// from a previous run of the same test.
fn store_root(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Every query class: selective containments and aggregations plus a
/// join (the index-bearing class the snapshot exists to warm-start).
fn mixed_batch(objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::containment(Mbr::new(-10.0, 40.0, -8.0, 42.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::aggregation(Mbr::new(6.0, 56.0, 10.0, 60.0)),
        Query::join(objects / 2),
    ]
}

/// The torture RNG: deterministic, replayable via `ATGIS_FAULT_SEED`.
struct XorShift64(u64);

impl XorShift64 {
    fn from_env() -> XorShift64 {
        let seed = std::env::var("ATGIS_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_u64);
        println!("torture seed: {seed} (replay with ATGIS_FAULT_SEED={seed})");
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The identity matrix: save → fresh engine on the same store
/// (simulated restart) → restore → bit-identical to a storeless cold
/// parse, across GeoJSON/WKT/XML × Pat/Fat/Adaptive × threads {1, 3}
/// × shards {1, 4} × containment/aggregation/join.
#[test]
fn warm_restart_is_bit_identical_across_the_matrix() {
    const OBJECTS: usize = 300;
    for format in [Format::GeoJson, Format::Wkt, Format::OsmXml] {
        let dataset = sorted_dataset(7, OBJECTS, format);
        let queries = mixed_batch(OBJECTS as u64);
        for threads in [1usize, 3] {
            for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
                // The oracle never sees a store: pure cold parse.
                let oracle = QuerySession::new(engine(threads, mode, None), dataset.clone())
                    .run(&queries, &ExecOptions::new())
                    .and_then(|o| o.collapse())
                    .expect("cold oracle");
                for shards in [1usize, 4] {
                    let root =
                        store_root(&format!("matrix-{format:?}-{mode:?}-t{threads}-s{shards}"));
                    let opts = if shards > 1 {
                        ExecOptions::new().sharded(shards)
                    } else {
                        ExecOptions::new()
                    };
                    // Cold run against the store: parses, answers,
                    // spills the index (and shard layout) it built.
                    {
                        let session =
                            QuerySession::new(engine(threads, mode, Some(&root)), dataset.clone());
                        let got = session
                            .run(&queries, &opts)
                            .and_then(|o| o.collapse())
                            .expect("cold run with store");
                        assert_eq!(
                            got, oracle,
                            "store-backed cold run diverged at {format:?}/{mode:?}/threads={threads}/shards={shards}"
                        );
                    }
                    // Simulated restart: a fresh engine and session
                    // over the same root restore the snapshot.
                    let warm = engine(threads, mode, Some(&root));
                    let store = warm.persist().expect("engine carries the store");
                    assert!(
                        store.snapshot_path(dataset.bytes(), format).exists(),
                        "the cold run must have spilled a snapshot at {format:?}/{mode:?}/threads={threads}/shards={shards}"
                    );
                    let session = QuerySession::new(warm, dataset.clone());
                    let got = session
                        .run(&queries, &opts)
                        .and_then(|o| o.collapse())
                        .expect("warm run");
                    assert_eq!(
                        got, oracle,
                        "restored run diverged at {format:?}/{mode:?}/threads={threads}/shards={shards}"
                    );
                }
            }
        }
    }
}

/// The headline warm-start observable: a restored partition index
/// (including the XML geometry table) answers a join-class batch with
/// **zero** parse passes — the restore really did replace the scan.
#[test]
fn warm_join_answers_with_zero_parse_passes() {
    const OBJECTS: u64 = 240;
    for format in [Format::GeoJson, Format::Wkt, Format::OsmXml] {
        let root = store_root(&format!("zeroparse-{format:?}"));
        let dataset = sorted_dataset(13, OBJECTS as usize, format);
        let joins = vec![Query::join(OBJECTS / 2), Query::join(OBJECTS / 3)];
        let cold = {
            let session = QuerySession::new(engine(2, Mode::Pat, Some(&root)), dataset.clone());
            let out = session
                .run(&joins, &ExecOptions::new().timed())
                .expect("cold join run");
            assert!(
                out.batch.as_ref().expect("timed run").scan_passes >= 1,
                "cold joins must parse at {format:?}"
            );
            out.collapse().expect("cold results")
        };
        let warm = engine(2, Mode::Pat, Some(&root));
        let store_stats = {
            let session = QuerySession::new(warm.clone(), dataset.clone());
            let out = session
                .run(&joins, &ExecOptions::new().timed())
                .expect("warm join run");
            assert_eq!(
                out.batch.as_ref().expect("timed run").scan_passes,
                0,
                "a restored index must serve joins without a single parse pass at {format:?}"
            );
            assert_eq!(out.collapse().expect("warm results"), cold);
            warm.persist().expect("store").stats()
        };
        assert!(store_stats.loads >= 1, "the restore went through the store");
    }
}

/// Scheduler write-through and restore: aggregates computed by one
/// scheduler are served from the cache by a fresh scheduler over the
/// same store — single-pass queries all hit, the join rides the
/// restored index, and the whole warm batch runs without one scan.
#[test]
fn scheduler_restore_serves_the_aggregate_cache() {
    const OBJECTS: u64 = 300;
    let root = store_root("scheduler");
    let dataset = sorted_dataset(17, OBJECTS as usize, Format::GeoJson);
    let queries = mixed_batch(OBJECTS);
    let cold = {
        let scheduler = QueryScheduler::new(engine(2, Mode::Pat, Some(&root)));
        let id = scheduler.register(dataset.clone());
        scheduler
            .run(id, &queries, &ExecOptions::new())
            .and_then(|o| o.collapse())
            .expect("cold scheduled run")
    };
    // Simulated restart: registration restores the snapshot's index,
    // shard layouts and finished aggregates under the fresh
    // dataset id × generation.
    let scheduler = QueryScheduler::new(engine(2, Mode::Pat, Some(&root)));
    let id = scheduler.register(dataset.clone());
    let out = scheduler
        .run(id, &queries, &ExecOptions::new().timed())
        .expect("warm scheduled run");
    let stats = out.scheduler.clone().expect("timed run reports stats");
    // Every single-pass query (2 containments + 2 aggregations) is a
    // cache hit; the join is not cacheable but runs over the restored
    // index, so the batch as a whole never scans.
    assert_eq!(stats.cache_hits, 4, "restored aggregates must serve");
    assert_eq!(stats.scan_passes, 0, "warm batch must not parse");
    assert_eq!(out.collapse().expect("warm results"), cold);
}

/// `update()` invalidation carries over the persistence boundary: the
/// superseded dataset's snapshot is deleted *before* the swap, so a
/// stale-generation snapshot can never serve — not in this process,
/// not in the next one.
#[test]
fn restore_then_update_never_serves_stale_state() {
    const OBJECTS: u64 = 260;
    let root = store_root("update");
    let old = sorted_dataset(19, OBJECTS as usize, Format::GeoJson);
    let new = sorted_dataset(23, OBJECTS as usize, Format::GeoJson);
    let queries = mixed_batch(OBJECTS);

    let scheduler = QueryScheduler::new(engine(2, Mode::Pat, Some(&root)));
    let store = scheduler.engine().persist().expect("store").clone();
    let id = scheduler.register(old.clone());
    scheduler
        .run(id, &queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("run against the old bytes");
    let old_snap = store.snapshot_path(old.bytes(), Format::GeoJson);
    assert!(old_snap.exists(), "the old dataset spilled a snapshot");

    scheduler.update(id, new.clone()).expect("update");
    assert!(
        !old_snap.exists(),
        "update() must delete the superseded snapshot before the swap"
    );

    // Post-update traffic answers over the new bytes, identical to a
    // storeless cold parse of those bytes.
    let oracle = QuerySession::new(engine(2, Mode::Pat, None), new.clone())
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("cold oracle over the new bytes");
    let got = scheduler
        .run(id, &queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("post-update run");
    assert_eq!(got, oracle, "post-update results must cover the new bytes");

    // A restarted process warm-starts from the *new* dataset's
    // snapshot; the old bytes find nothing and parse cold — the stale
    // snapshot is unreachable because it no longer exists.
    let restarted = PersistStore::open(&root).expect("reopen store");
    assert!(matches!(
        restarted.load(old.bytes(), Format::GeoJson),
        Ok(None)
    ));
    let warm = restarted
        .load(new.bytes(), Format::GeoJson)
        .expect("load new snapshot");
    assert!(warm.is_some(), "the new dataset's snapshot survives");
}

/// Runs `queries` through a fresh store-backed session and asserts
/// the results equal the storeless oracle — the cold-fallback check
/// every corruption in the torture suite must pass.
fn assert_falls_back_to_cold(
    root: &Path,
    dataset: &Dataset,
    queries: &[Query],
    oracle: &[atgis::QueryResult],
    context: &str,
) {
    let session = QuerySession::new(engine(2, Mode::Pat, Some(root)), dataset.clone());
    let got = session
        .run(queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .unwrap_or_else(|e| panic!("fallback run failed under {context}: {e}"));
    assert_eq!(
        got, oracle,
        "fallback diverged from cold parse under {context}"
    );
}

/// Corruption torture: truncation at every section boundary and a
/// spread of header offsets, seeded bit flips across the whole file,
/// version skew and magic corruption. Every mutation must surface as
/// a structured [`PersistError`] from `load` and degrade the session
/// to a cold parse that is bit-identical to the storeless oracle —
/// never a panic, never a wrong answer.
#[test]
fn corrupt_snapshots_degrade_to_cold_never_panic() {
    const OBJECTS: u64 = 160;
    let root = store_root("torture");
    let dataset = sorted_dataset(29, OBJECTS as usize, Format::GeoJson);
    let queries = vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::join(OBJECTS / 2),
    ];
    let oracle = QuerySession::new(engine(2, Mode::Pat, None), dataset.clone())
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("cold oracle");

    // Write one good snapshot, then keep its bytes as the template
    // every mutation corrupts.
    {
        let session = QuerySession::new(engine(2, Mode::Pat, Some(&root)), dataset.clone());
        let got = session
            .run(&queries, &ExecOptions::new())
            .and_then(|o| o.collapse())
            .expect("seeding run");
        assert_eq!(got, oracle);
    }
    let store = PersistStore::open(&root).expect("open store");
    let path = store.snapshot_path(dataset.bytes(), Format::GeoJson);
    let good = std::fs::read(&path).expect("snapshot bytes");
    assert!(
        store
            .load(dataset.bytes(), Format::GeoJson)
            .expect("pristine load")
            .is_some(),
        "the pristine snapshot must restore — otherwise the torture below tests nothing"
    );

    // --- truncation at every structural boundary ---
    let mut cuts = snapshot::section_boundaries(&good);
    cuts.extend([0, 1, 3, 4, 5, 6, 7, 20, 37]);
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts.into_iter().filter(|&c| c < good.len()) {
        std::fs::write(&path, &good[..cut]).expect("write truncated snapshot");
        let fresh = PersistStore::open(&root).expect("reopen store");
        let err = fresh
            .load(dataset.bytes(), Format::GeoJson)
            .expect_err("a truncated snapshot must be a structured error");
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Malformed { .. }
                    | PersistError::BadMagic
                    | PersistError::VersionSkew { .. }
            ),
            "unexpected error for truncation at {cut}: {err:?}"
        );
        assert_falls_back_to_cold(
            &root,
            &dataset,
            &queries,
            &oracle,
            &format!("truncation at byte {cut}"),
        );
    }

    // --- seeded bit flips across the whole file ---
    let mut rng = XorShift64::from_env();
    for trial in 0..48 {
        let mut bytes = good.clone();
        let bit = rng.below(bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).expect("write flipped snapshot");
        let fresh = PersistStore::open(&root).expect("reopen store");
        let loaded = fresh.load(dataset.bytes(), Format::GeoJson);
        assert!(
            loaded.is_err(),
            "trial {trial}: a flipped bit at offset {} must not load: {loaded:?}",
            bit / 8
        );
        assert_falls_back_to_cold(
            &root,
            &dataset,
            &queries,
            &oracle,
            &format!(
                "bit flip at byte {} bit {} (trial {trial})",
                bit / 8,
                bit % 8
            ),
        );
    }

    // --- version skew: a future format rev is rejected by name ---
    let mut skewed = good.clone();
    skewed[4..6].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &skewed).expect("write skewed snapshot");
    let fresh = PersistStore::open(&root).expect("reopen store");
    match fresh.load(dataset.bytes(), Format::GeoJson) {
        Err(PersistError::VersionSkew { found }) => assert_eq!(found, SNAPSHOT_VERSION + 1),
        other => panic!("version skew must be named: {other:?}"),
    }
    assert_falls_back_to_cold(&root, &dataset, &queries, &oracle, "version skew");

    // --- magic corruption and outright garbage ---
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    std::fs::write(&path, &bad_magic).expect("write bad-magic snapshot");
    let fresh = PersistStore::open(&root).expect("reopen store");
    assert!(matches!(
        fresh.load(dataset.bytes(), Format::GeoJson),
        Err(PersistError::BadMagic)
    ));
    let garbage: Vec<u8> = (0..good.len()).map(|_| rng.next_u64() as u8).collect();
    std::fs::write(&path, &garbage).expect("write garbage snapshot");
    let fresh = PersistStore::open(&root).expect("reopen store");
    assert!(fresh.load(dataset.bytes(), Format::GeoJson).is_err());
    assert_falls_back_to_cold(&root, &dataset, &queries, &oracle, "garbage file");

    // --- and the good bytes still restore after all of that ---
    std::fs::write(&path, &good).expect("restore good snapshot");
    let fresh = PersistStore::open(&root).expect("reopen store");
    assert!(fresh
        .load(dataset.bytes(), Format::GeoJson)
        .expect("pristine load")
        .is_some());
}

/// A snapshot renamed onto another dataset's key must fail the
/// embedded-identity check and leave both datasets serving cold,
/// correct results — content addressing alone is not trusted.
#[test]
fn renamed_snapshot_cannot_cross_datasets() {
    const OBJECTS: u64 = 180;
    let root = store_root("rename");
    let a = sorted_dataset(31, OBJECTS as usize, Format::GeoJson);
    let b = sorted_dataset(37, OBJECTS as usize, Format::GeoJson);
    let queries = mixed_batch(OBJECTS);
    {
        let session = QuerySession::new(engine(2, Mode::Pat, Some(&root)), a.clone());
        session
            .run(&queries, &ExecOptions::new())
            .and_then(|o| o.collapse())
            .expect("seed dataset a");
    }
    let store = PersistStore::open(&root).expect("open store");
    let from = store.snapshot_path(a.bytes(), Format::GeoJson);
    let to = store.snapshot_path(b.bytes(), Format::GeoJson);
    std::fs::copy(&from, &to).expect("masquerade a's snapshot as b's");

    let fresh = PersistStore::open(&root).expect("reopen store");
    assert!(
        fresh.load(b.bytes(), Format::GeoJson).is_err(),
        "the embedded fingerprint must reject the renamed snapshot"
    );
    let oracle = QuerySession::new(engine(2, Mode::Pat, None), b.clone())
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("cold oracle for b");
    assert_falls_back_to_cold(&root, &b, &queries, &oracle, "renamed snapshot");
}

/// The atomic-spill and poisoned-read failpoints, plus the orphan
/// sweep — the kill-during-spill story end to end. One test so the
/// process-global fault registry is never shared across threads.
#[cfg(feature = "fault-injection")]
mod failpoints {
    use super::*;
    use atgis::fault::{self, FaultAction};

    fn tmp_files(root: &Path) -> Vec<PathBuf> {
        std::fs::read_dir(root)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.to_string_lossy().contains(".tmp."))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn spill_and_restore_survive_injected_faults() {
        fault::disarm_all();
        const OBJECTS: u64 = 200;
        let root = store_root("failpoints");
        let dataset = sorted_dataset(41, OBJECTS as usize, Format::GeoJson);
        let joins = vec![Query::join(OBJECTS / 2)];
        let oracle = QuerySession::new(engine(2, Mode::Pat, None), dataset.clone())
            .run(&joins, &ExecOptions::new())
            .and_then(|o| o.collapse())
            .expect("cold oracle");

        // Kill the spill before the tmp file exists: the query still
        // answers, nothing is left on disk.
        fault::arm("persist.write.0", FaultAction::Panic("die pre-tmp".into()));
        {
            let eng = engine(2, Mode::Pat, Some(&root));
            let session = QuerySession::new(eng.clone(), dataset.clone());
            let got = session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .expect("query survives the spill fault");
            assert_eq!(got, oracle);
            let store = eng.persist().expect("store");
            assert!(
                store.stats().save_failures >= 1,
                "the fault was a counted save failure"
            );
            assert!(!store
                .snapshot_path(dataset.bytes(), Format::GeoJson)
                .exists());
        }
        assert!(fault::disarm("persist.write.0") >= 1);
        assert!(
            tmp_files(&root).is_empty(),
            "no debris before the tmp stage"
        );

        // Kill between fsync and rename — the classic torn-spill
        // window. The snapshot must not appear (rename never ran) and
        // the tmp file is cleaned up, not left to masquerade later.
        fault::arm(
            "persist.write.1",
            FaultAction::Panic("die pre-rename".into()),
        );
        {
            let eng = engine(2, Mode::Pat, Some(&root));
            let session = QuerySession::new(eng.clone(), dataset.clone());
            session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .expect("query survives the torn spill");
            let store = eng.persist().expect("store");
            assert!(!store
                .snapshot_path(dataset.bytes(), Format::GeoJson)
                .exists());
        }
        assert!(fault::disarm("persist.write.1") >= 1);
        assert!(tmp_files(&root).is_empty(), "torn spill leaves no tmp file");

        // A hard kill that *did* leave an orphan tmp (simulated by
        // planting one) is swept by the next open.
        std::fs::create_dir_all(&root).expect("store root");
        let orphan = root.join("00000000deadbeef.tmp.999.1");
        std::fs::write(&orphan, b"torn").expect("plant orphan");
        let _ = PersistStore::open(&root).expect("reopen sweeps");
        assert!(!orphan.exists(), "open() must sweep orphan tmp files");

        // Clean spill, then a poisoned read: restore fails, the
        // session parses cold, answers stay bit-identical.
        {
            let session = QuerySession::new(engine(2, Mode::Pat, Some(&root)), dataset.clone());
            session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .expect("clean spill");
        }
        fault::arm("persist.read.0", FaultAction::Panic("die on load".into()));
        {
            let eng = engine(2, Mode::Pat, Some(&root));
            let session = QuerySession::new(eng.clone(), dataset.clone());
            let got = session
                .run(&joins, &ExecOptions::new())
                .and_then(|o| o.collapse())
                .expect("query survives the poisoned read");
            assert_eq!(got, oracle, "cold fallback after a read fault");
            assert!(eng.persist().expect("store").stats().load_failures >= 1);
        }
        assert!(fault::disarm("persist.read.0") >= 1);
        fault::disarm_all();

        // With every fault disarmed the same root warm-starts.
        let eng = engine(2, Mode::Pat, Some(&root));
        let session = QuerySession::new(eng, dataset.clone());
        let out = session
            .run(&joins, &ExecOptions::new().timed())
            .expect("warm run");
        assert_eq!(out.batch.as_ref().expect("timed").scan_passes, 0);
        assert_eq!(out.collapse().expect("warm results"), oracle);
    }
}
