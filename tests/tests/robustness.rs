//! Robustness suite: cooperative cancellation, deadlines, and the
//! per-query failure domain — exercised end to end through the public
//! entry points (`Engine`, `QuerySession`, `QueryScheduler`,
//! streaming). The invariants under test:
//!
//! - a tripped [`CancelToken`] surfaces as structured
//!   `Error::Cancelled` / `Error::DeadlineExceeded`, never a panic, a
//!   hang, or a partial result served as complete;
//! - cancellation observed at any chunk boundary either completes
//!   bit-identically to the oracle or cancels cleanly — no third
//!   outcome;
//! - the engine, its worker pool, and the scheduler stay fully
//!   serviceable after every cancelled, timed-out, or failed batch:
//!   the next identical batch is bit-identical to solo execution.

use atgis::stream::ChunkSource;
use atgis::{
    chunk_channel, CancelToken, Dataset, Engine, Error, ExecOptions, Query, QueryError,
    QueryResult, QueryScheduler, QuerySession, SliceChunkSource,
};
use atgis_datagen::{write_geojson, OsmGenerator};
use atgis_formats::Format;
use atgis_geometry::Mbr;
use atgis_tests::{RunExt, SchedRunExt, SessionRunExt};

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).cell_size(2.0).build()
}

fn bytes(seed: u64, n: usize) -> Vec<u8> {
    write_geojson(&OsmGenerator::new(seed).generate(n))
}

fn queries(n_objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-10.0, 40.0, 10.0, 60.0)),
        Query::aggregation(Mbr::new(-6.0, 44.0, 4.0, 56.0)),
        Query::join(n_objects / 2),
        Query::combined(n_objects / 2, 0.0, f64::INFINITY),
    ]
}

/// Wraps a [`ChunkSource`] and trips the token just before chunk
/// `after` is handed out — the feature-independent twin of the
/// fault-injection harness's `CancelAfterChunks`, so the
/// every-boundary sweep also runs in default builds.
struct CancelAt<S> {
    inner: S,
    token: CancelToken,
    after: u64,
    served: u64,
}

impl<S: ChunkSource> ChunkSource for CancelAt<S> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        if self.served == self.after {
            self.token.cancel();
        }
        self.served += 1;
        self.inner.next_chunk()
    }

    fn size_hint(&self) -> Option<usize> {
        self.inner.size_hint()
    }
}

#[test]
fn pre_cancelled_batch_errors_and_engine_serves_the_next_one() {
    let e = engine(2);
    let ds = Dataset::from_bytes(bytes(1201, 60), Format::GeoJson);
    let qs = queries(60);
    let token = CancelToken::new();
    token.cancel();
    match e
        .run(&qs, &ds, &ExecOptions::new().cancellable(&token))
        .and_then(|o| o.collapse())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Same engine, same pool: the rerun is bit-identical to solo.
    let want: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();
    assert_eq!(
        e.run(
            &qs,
            &ds,
            &ExecOptions::new().cancellable(&CancelToken::new())
        )
        .and_then(|o| o.collapse())
        .unwrap(),
        want
    );
}

#[test]
fn elapsed_deadline_is_its_own_error() {
    let e = engine(2);
    let ds = Dataset::from_bytes(bytes(1202, 60), Format::GeoJson);
    let token = CancelToken::with_deadline(std::time::Duration::ZERO);
    match e
        .run(&queries(60), &ds, &ExecOptions::new().cancellable(&token))
        .and_then(|o| o.collapse())
    {
        Err(Error::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Explicit cancellation outranks an elapsed deadline.
    token.cancel();
    match e
        .run(&queries(60), &ds, &ExecOptions::new().cancellable(&token))
        .and_then(|o| o.collapse())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn isolated_batch_is_all_ok_and_identical_when_nothing_fails() {
    let e = engine(2);
    let ds = Dataset::from_bytes(bytes(1203, 60), Format::GeoJson);
    let qs = queries(60);
    let want: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();
    let isolated = e
        .run(&qs, &ds, &ExecOptions::new().isolated())
        .unwrap()
        .outcomes;
    let got: Vec<QueryResult> = isolated.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, want);
}

#[test]
fn streaming_cancellation_stops_between_chunks() {
    // The consumer checks the token once per chunk: a token cancelled
    // after chunk 3 must surface Cancelled without draining the rest
    // of the stream, even though the producer keeps sending.
    let data = bytes(1204, 80);
    let e = engine(2);
    let token = CancelToken::new();
    let mut source = CancelAt {
        inner: SliceChunkSource::new(&data, 512),
        token: token.clone(),
        after: 3,
        served: 0,
    };
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    match e
        .run_streaming(
            std::slice::from_ref(&q),
            &mut source,
            Format::GeoJson,
            &ExecOptions::new().cancellable(&token),
        )
        .and_then(|o| o.into_single())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The engine still streams the full dataset afterwards.
    let ds = Dataset::from_bytes(data.clone(), Format::GeoJson);
    let want = e.exec1(&q, &ds).unwrap();
    let mut clean = SliceChunkSource::new(&data, 512);
    assert_eq!(
        e.run_streaming(
            std::slice::from_ref(&q),
            &mut clean,
            Format::GeoJson,
            &ExecOptions::new(),
        )
        .and_then(|o| o.into_single())
        .unwrap(),
        want
    );
}

#[test]
fn cancellation_at_every_chunk_boundary_is_clean() {
    // Sweep the cancellation point across every chunk boundary of the
    // stream: each run must either complete bit-identically to the
    // buffered oracle or return Cancelled — never hang, panic, or
    // return a silently truncated result.
    let data = bytes(1205, 40);
    let chunk_len = 256;
    let n_chunks = data.len().div_ceil(chunk_len) as u64;
    let e = engine(2);
    let q = Query::aggregation(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let oracle = e
        .exec1(&q, &Dataset::from_bytes(data.clone(), Format::GeoJson))
        .unwrap();
    let mut cancelled = 0u64;
    for after in 0..=n_chunks {
        let token = CancelToken::new();
        let mut source = CancelAt {
            inner: SliceChunkSource::new(&data, chunk_len),
            token: token.clone(),
            after,
            served: 0,
        };
        match e
            .run_streaming(
                std::slice::from_ref(&q),
                &mut source,
                Format::GeoJson,
                &ExecOptions::new().cancellable(&token),
            )
            .and_then(|o| o.into_single())
        {
            Ok(result) => assert_eq!(result, oracle, "boundary {after}: wrong result"),
            Err(Error::Cancelled) => cancelled += 1,
            Err(other) => panic!("boundary {after}: unexpected error {other:?}"),
        }
    }
    assert!(cancelled > 0, "the sweep never observed a cancellation");
    // The pool survived every aborted run.
    let mut clean = SliceChunkSource::new(&data, chunk_len);
    assert_eq!(
        e.run_streaming(
            std::slice::from_ref(&q),
            &mut clean,
            Format::GeoJson,
            &ExecOptions::new(),
        )
        .and_then(|o| o.into_single())
        .unwrap(),
        oracle
    );
}

#[test]
fn channel_fed_stream_honours_cancellation_while_producer_blocks() {
    // A bounded channel with a slow consumer: cancel mid-stream and
    // the consumer must exit promptly (freeing the channel) instead of
    // deadlocking against a blocked producer.
    let data = bytes(1206, 60);
    let e = engine(2);
    let token = CancelToken::new();
    let (tx, mut rx) = chunk_channel(1);
    let producer = {
        let data = data.clone();
        std::thread::spawn(move || {
            for chunk in data.chunks(128) {
                if tx.send(chunk.to_vec()).is_err() {
                    return; // consumer hung up — expected on cancel
                }
            }
        })
    };
    token.cancel();
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    match e
        .run_streaming(
            std::slice::from_ref(&q),
            &mut rx,
            Format::GeoJson,
            &ExecOptions::new().cancellable(&token),
        )
        .and_then(|o| o.into_single())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    drop(rx);
    producer.join().expect("producer must not deadlock");
}

#[test]
fn scheduler_counts_cancellations_and_stays_serviceable() {
    let e = engine(2);
    let scheduler = QueryScheduler::new(e.clone());
    let ds = Dataset::from_bytes(bytes(1207, 60), Format::GeoJson);
    let id = scheduler.register(ds.clone());
    let qs = queries(60);

    let token = CancelToken::new();
    token.cancel();
    let (results, stats) = scheduler
        .run(
            id,
            &qs,
            &ExecOptions::new().isolated().timed().cancellable(&token),
        )
        .map(|o| (o.outcomes, o.scheduler.unwrap()))
        .unwrap();
    assert_eq!(results.len(), qs.len());
    for r in &results {
        assert!(
            matches!(r, Err(QueryError::Cancelled)),
            "pre-cancelled batch must fail every member: {r:?}"
        );
    }
    assert_eq!(stats.cancelled, qs.len() as u64);
    assert_eq!(stats.deadline_exceeded, 0);
    assert_eq!(stats.task_panics, 0);

    // Deadline flavour.
    let strict = CancelToken::with_deadline(std::time::Duration::ZERO);
    let (results, stats) = scheduler
        .run(
            id,
            &qs,
            &ExecOptions::new().isolated().timed().cancellable(&strict),
        )
        .map(|o| (o.outcomes, o.scheduler.unwrap()))
        .unwrap();
    assert!(results
        .iter()
        .all(|r| matches!(r, Err(QueryError::DeadlineExceeded))));
    assert_eq!(stats.deadline_exceeded, qs.len() as u64);

    // The collapsing entry point maps the same condition to the
    // structured batch error.
    let again = CancelToken::new();
    again.cancel();
    match scheduler
        .run(id, &qs, &ExecOptions::new().cancellable(&again))
        .and_then(|o| o.collapse())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // And after all that abuse the scheduler still serves the batch
    // bit-identically to solo execution.
    let want: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();
    assert_eq!(scheduler.execb(id, &qs).unwrap(), want);
    let stats = scheduler.stats_probe(id, &qs);
    assert_eq!(stats.cancelled, 0);
}

/// Small extension trait so the test above can read a clean-run
/// counter without caring about the tuple shape.
trait StatsProbe {
    fn stats_probe(&self, id: atgis::DatasetId, qs: &[Query]) -> atgis::SchedulerStats;
}

impl StatsProbe for QueryScheduler {
    fn stats_probe(&self, id: atgis::DatasetId, qs: &[Query]) -> atgis::SchedulerStats {
        self.execb_timed(id, qs).unwrap().1
    }
}

#[test]
fn streaming_session_misuse_is_invalid_state_not_a_panic() {
    let mut session = QuerySession::streaming(engine(2), Format::GeoJson).unwrap();
    let data = bytes(1208, 40);
    for chunk in data.chunks(512) {
        session.ingest_chunk(chunk).unwrap();
    }
    // Join-class queries need the sealed index.
    match session.exec1(&Query::join(20)) {
        Err(Error::InvalidState(_)) => {}
        other => panic!("expected InvalidState, got {other:?}"),
    }
    session.finish().unwrap();
    // Ingest-after-seal and double-finish are lifecycle errors too.
    assert!(matches!(
        session.ingest_chunk(b"{}"),
        Err(Error::InvalidState(_))
    ));
    assert!(matches!(session.finish(), Err(Error::InvalidState(_))));
    // After the misuse the session still answers correctly.
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let want = engine(2)
        .exec1(&q, &Dataset::from_bytes(data, Format::GeoJson))
        .unwrap();
    assert_eq!(session.exec1(&q).unwrap(), want);
}

#[test]
fn session_cancellable_batch_round_trip() {
    let e = engine(2);
    let ds = Dataset::from_bytes(bytes(1209, 50), Format::GeoJson);
    let qs = queries(50);
    let want: Vec<QueryResult> = qs.iter().map(|q| e.exec1(q, &ds).unwrap()).collect();
    let session = QuerySession::new(e, ds);
    let token = CancelToken::new();
    token.cancel();
    match session
        .run(&qs, &ExecOptions::new().cancellable(&token))
        .and_then(|o| o.collapse())
    {
        Err(Error::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(
        session
            .run(&qs, &ExecOptions::new().cancellable(&CancelToken::new()))
            .unwrap()
            .collapse()
            .unwrap(),
        want
    );
}
