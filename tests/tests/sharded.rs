//! Sharded scatter–gather differentials: `ExecOptions::sharded(n)`
//! must be **bit-identical** to single-node execution for every shard
//! count, thread count, parse mode, format, and query class — the
//! associativity guarantee `crate::shard` documents. On top of the
//! identity matrix this suite pins the observable scatter accounting
//! ([`atgis::stats::ShardStats`] and its `scattered + pruned =
//! queries × shards` invariant), MBR-based shard pruning on spatially
//! coherent storage, and (under `--features fault-injection`) the
//! per-shard fault-isolation contract: one shard's panic tombstones
//! exactly the queries scattered to it.
//!
//! A companion test pins the deprecated `execute*` wrappers
//! bit-identical to the unified `run` API they delegate to.

use atgis::{
    Dataset, Engine, ExecOptions, Query, QueryResult, QueryScheduler, QuerySession, ShardPolicy,
    ShardSet,
};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;

/// Spatially coherent dataset: generated objects sorted by centroid
/// longitude before serialisation — the storage order of a real
/// regional export. Byte-range shards then carry tight MBRs and
/// region queries can prune; shuffled storage degrades (gracefully,
/// still bit-identically) to scatter-everywhere.
fn sorted_dataset(seed: u64, objects: usize, format: Format) -> Dataset {
    let mut ds = OsmGenerator::new(seed).generate(objects);
    ds.objects.sort_by(|a, b| {
        let ax = a.geometry.mbr().center().x;
        let bx = b.geometry.mbr().center().x;
        ax.partial_cmp(&bx).expect("finite centroids")
    });
    let bytes = match format {
        Format::GeoJson => write_geojson(&ds),
        Format::Wkt => write_wkt(&ds),
        Format::OsmXml => write_osm_xml(&ds),
    };
    Dataset::from_bytes(bytes, format)
}

fn engine(threads: usize, mode: Mode) -> Engine {
    Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(1.0)
        .build()
}

/// Every query class: selective containments and aggregations (so
/// pruning is in play) plus a join (which always scatters everywhere).
fn mixed_batch(objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0)),
        Query::containment(Mbr::new(-10.0, 40.0, -8.0, 42.0)),
        Query::aggregation(Mbr::new(0.0, 50.0, 4.0, 54.0)),
        Query::aggregation(Mbr::new(6.0, 56.0, 10.0, 60.0)),
        Query::join(objects / 2),
    ]
}

/// The identity matrix: shard counts {1, 2, 4, 8} × threads {1, 3} ×
/// Pat/Fat/Adaptive × GeoJSON/WKT/XML × containment/aggregation/join,
/// each sharded run compared against the same engine's unsharded run.
#[test]
fn sharded_is_bit_identical_across_the_matrix() {
    const OBJECTS: usize = 400;
    for format in [Format::GeoJson, Format::Wkt, Format::OsmXml] {
        let dataset = sorted_dataset(7, OBJECTS, format);
        let queries = mixed_batch(OBJECTS as u64);
        for threads in [1usize, 3] {
            for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
                let engine = engine(threads, mode);
                let oracle = engine
                    .run(&queries, &dataset, &ExecOptions::new())
                    .and_then(|o| o.collapse())
                    .expect("single-node oracle");
                for shards in [1usize, 2, 4, 8] {
                    let got = engine
                        .run(&queries, &dataset, &ExecOptions::new().sharded(shards))
                        .and_then(|o| o.collapse())
                        .expect("sharded run");
                    assert_eq!(
                        got, oracle,
                        "sharded != single-node at {format:?}/{mode:?}/threads={threads}/shards={shards}"
                    );
                }
            }
        }
    }
}

/// `ShardPolicy::Auto` (one shard per worker, capped at 8) goes
/// through the same scatter–gather path and stays bit-identical, at
/// the session layer with its cached `ShardSet`.
#[test]
fn auto_policy_matches_single_node() {
    let dataset = sorted_dataset(11, 500, Format::GeoJson);
    let queries = mixed_batch(500);
    let engine = engine(3, Mode::Pat);
    let session = QuerySession::new(engine, dataset);
    let oracle = session
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("single-node oracle");
    // Twice: the second run hits the session's cached ShardSet.
    for _ in 0..2 {
        let got = session
            .run(&queries, &ExecOptions::new().with_shards(ShardPolicy::Auto))
            .and_then(|o| o.collapse())
            .expect("auto-sharded run");
        assert_eq!(got, oracle);
    }
}

/// Pruning is observable and exactly accounted: `ShardStats` must
/// agree with the masks `ShardSet::scatter_mask` reports, satisfy
/// `scattered + pruned = queries × shards`, and a region disjoint
/// from the whole dataset must scatter nowhere yet still answer
/// (empty, identical to single-node).
#[test]
fn pruning_is_observable_and_exactly_accounted() {
    let dataset = sorted_dataset(23, 800, Format::GeoJson);
    let engine = engine(2, Mode::Pat);
    let queries = vec![
        Query::containment(Mbr::new(-10.0, 40.0, -8.0, 42.0)),
        Query::aggregation(Mbr::new(6.0, 56.0, 10.0, 60.0)),
        // Disjoint from the generator's extent: prunes every shard.
        Query::containment(Mbr::new(120.0, -10.0, 130.0, 0.0)),
    ];
    let shards = 4usize;
    let set = ShardSet::build(&engine, &dataset, shards, None).expect("shard layout");
    assert_eq!(
        set.len(),
        shards,
        "dataset large enough for {shards} shards"
    );
    let masks: Vec<Vec<bool>> = queries.iter().map(|q| set.scatter_mask(q)).collect();
    assert!(
        masks.iter().any(|m| m.iter().any(|&b| !b)),
        "selective regions on sorted storage must prune somewhere"
    );
    assert!(
        masks[2].iter().all(|&b| !b),
        "a region disjoint from the dataset prunes every shard"
    );

    let session = QuerySession::new(engine, dataset);
    let oracle = session
        .run(&queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("single-node oracle");
    let out = session
        .run(&queries, &ExecOptions::new().sharded(shards).timed())
        .expect("sharded run");
    let stats = out
        .shard_stats()
        .expect("timed sharded run reports ShardStats")
        .clone();

    let expect_scattered: u64 = masks
        .iter()
        .map(|m| m.iter().filter(|&&b| b).count() as u64)
        .sum();
    assert_eq!(stats.shards, shards as u64);
    assert_eq!(stats.scattered, expect_scattered);
    assert_eq!(
        stats.scattered + stats.pruned,
        (queries.len() * shards) as u64,
        "every (query, shard) pair is either scattered or pruned"
    );
    assert!(stats.pruned > 0);
    assert_eq!(stats.per_shard.len(), shards);
    for (s, timing) in stats.per_shard.iter().enumerate() {
        let expect = masks.iter().filter(|m| m[s]).count() as u64;
        assert_eq!(timing.queries, expect, "per-shard query count at shard {s}");
    }

    let got = out.collapse().expect("sharded results");
    assert_eq!(got, oracle);
    assert_eq!(
        got[2],
        QueryResult::Matches(Vec::new()),
        "fully-pruned query still answers, with the identity result"
    );
}

/// The deprecated `execute*` wrappers must stay bit-identical to the
/// unified `run` API they now delegate to — the compatibility
/// contract of the API redesign.
#[test]
#[allow(deprecated)]
fn deprecated_wrappers_match_the_run_api() {
    let dataset = sorted_dataset(31, 300, Format::GeoJson);
    let queries = mixed_batch(300);
    let single = Query::containment(Mbr::new(-2.0, 48.0, 2.0, 52.0));
    let engine = engine(2, Mode::Pat);

    // Engine layer.
    let run1 = engine
        .run(std::slice::from_ref(&single), &dataset, &ExecOptions::new())
        .and_then(|o| o.into_single())
        .expect("run");
    assert_eq!(engine.execute(&single, &dataset).expect("execute"), run1);

    let runb = engine
        .run(&queries, &dataset, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("run batch");
    assert_eq!(
        engine
            .execute_batch(&queries, &dataset)
            .expect("execute_batch"),
        runb
    );

    let (wrapped, wstats) = engine
        .execute_batch_timed(&queries, &dataset)
        .expect("execute_batch_timed");
    let out = engine
        .run(&queries, &dataset, &ExecOptions::new().timed())
        .expect("timed run");
    assert_eq!(out.batch.as_ref().expect("stats").queries, wstats.queries);
    assert_eq!(out.collapse().expect("results"), wrapped);

    // Session layer.
    let session = QuerySession::new(engine.clone(), dataset.clone());
    let run_iso: Vec<_> = session
        .run(&queries, &ExecOptions::new().isolated())
        .expect("isolated run")
        .outcomes;
    let wrap_iso = session
        .execute_batch_isolated(&queries, None)
        .expect("wrapper");
    assert_eq!(run_iso, wrap_iso);

    // Scheduler layer.
    let scheduler = QueryScheduler::new(engine);
    let id = scheduler.register(dataset);
    let runs = scheduler
        .run(id, &queries, &ExecOptions::new())
        .and_then(|o| o.collapse())
        .expect("scheduler run");
    assert_eq!(
        scheduler.execute_batch(id, &queries).expect("wrapper"),
        runs
    );
}

/// Per-shard fault isolation, driven by the shard-targeted failpoint
/// `shard.scan.N`: panicking exactly one shard must tombstone exactly
/// the queries scattered to it (per `ShardSet::scatter_mask`), while
/// every batch-mate that never touched the failing shard returns its
/// oracle-identical result.
#[cfg(feature = "fault-injection")]
mod fault_isolation {
    use super::*;
    use atgis::fault::{self, FaultAction};
    use atgis::{Error, QueryError};

    #[test]
    fn one_shard_panic_tombstones_only_its_queries() {
        fault::disarm_all();
        let dataset = sorted_dataset(43, 600, Format::GeoJson);
        let engine = engine(2, Mode::Pat);
        let shards = 4usize;
        let set = ShardSet::build(&engine, &dataset, shards, None).expect("shard layout");
        assert_eq!(set.len(), shards);

        let queries = mixed_batch(600);
        let masks: Vec<Vec<bool>> = queries.iter().map(|q| set.scatter_mask(q)).collect();
        assert!(
            masks.iter().any(|m| m[1]) && masks.iter().any(|m| !m[1]),
            "the batch must both touch and miss shard 1 for this test to bite: {masks:?}"
        );

        let oracle = engine
            .run(&queries, &dataset, &ExecOptions::new())
            .and_then(|o| o.collapse())
            .expect("clean oracle");

        fault::arm("shard.scan.1", FaultAction::Panic("shard 1 down".into()));
        let isolated = engine
            .run(
                &queries,
                &dataset,
                &ExecOptions::new().sharded(shards).isolated(),
            )
            .expect("isolated run survives the shard panic");
        let whole = engine
            .run(&queries, &dataset, &ExecOptions::new().sharded(shards))
            .expect_err("whole-batch semantics promote the tombstone");
        let hits = fault::disarm("shard.scan.1");
        fault::disarm_all();

        assert_eq!(hits, 2, "the failpoint fires once per sharded run");
        assert!(
            matches!(&whole, Error::TaskPanicked(m) if m.contains("shard 1 down")),
            "unexpected whole-batch error: {whole:?}"
        );
        for (i, outcome) in isolated.outcomes.iter().enumerate() {
            if masks[i][1] {
                assert!(
                    matches!(outcome, Err(QueryError::Panicked(m)) if m.contains("shard 1 down")),
                    "query {i} scattered to the failing shard must tombstone: {outcome:?}"
                );
            } else {
                assert_eq!(
                    outcome.as_ref().expect("query missed the failing shard"),
                    &oracle[i],
                    "query {i} never touched shard 1 and must match the oracle"
                );
            }
        }
    }
}
