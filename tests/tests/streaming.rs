//! Streaming-differential suite: `execute_streaming` must be
//! **bit-identical** to buffered `execute` for every format ×
//! execution mode × chunk size — including chunk boundaries that fall
//! inside multi-byte markers, UTF-8 escapes, numbers and XML
//! entities — plus boundary-torture cases (empty final chunk,
//! chunk-per-byte) and the bounded-fragment-memory guarantee.

use atgis::stream::SliceChunkSource;
use atgis::{chunk_channel, Dataset, Engine, Query, QueryResult};
use atgis_datagen::{write_geojson, write_osm_xml, write_wkt, OsmGenerator};
use atgis_formats::{Format, Mode};
use atgis_geometry::Mbr;
use atgis_tests::{RunExt, StreamRunExt};

fn engine(threads: usize, mode: Mode) -> Engine {
    Engine::builder()
        .threads(threads)
        .mode(mode)
        .grid_extent(Mbr::new(-11.0, 39.0, 11.0, 61.0))
        .cell_size(2.0)
        .build()
}

fn bytes_for(format: Format, seed: u64, n: usize) -> Vec<u8> {
    let ds = OsmGenerator::new(seed).generate(n);
    match format {
        Format::GeoJson => write_geojson(&ds),
        Format::Wkt => write_wkt(&ds),
        Format::OsmXml => write_osm_xml(&ds),
    }
}

fn full_queries(n_objects: u64) -> Vec<Query> {
    vec![
        Query::containment(Mbr::new(-8.0, 44.0, 6.0, 56.0)),
        Query::aggregation(Mbr::new(-11.0, 39.0, 11.0, 61.0)),
        Query::join(n_objects / 2),
        Query::combined(n_objects / 2, 10.0, 1.0e7),
    ]
}

/// The core differential: for each query, a buffered run over the
/// materialised bytes must equal a streamed run over the same bytes
/// cut into `chunk_len`-sized chunks, exactly (floats included).
fn assert_streamed_equals_buffered(
    e: &Engine,
    bytes: &[u8],
    format: Format,
    chunk_len: usize,
    queries: &[Query],
    label: &str,
) {
    let ds = Dataset::from_bytes(bytes.to_vec(), format);
    for (qi, q) in queries.iter().enumerate() {
        let want = e.exec1(q, &ds).unwrap();
        let mut source = SliceChunkSource::new(bytes, chunk_len);
        let got = e.stream1(q, &mut source, format).unwrap();
        assert_eq!(got, want, "{label} chunk={chunk_len} query#{qi}");
    }
}

#[test]
fn streaming_differential_geojson_across_modes_and_chunks() {
    for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
        let small = bytes_for(Format::GeoJson, 21, 8);
        for chunk in [1usize, 7] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &small,
                Format::GeoJson,
                chunk,
                &full_queries(8),
                &format!("geojson/{mode:?}"),
            );
        }
        let medium = bytes_for(Format::GeoJson, 22, 80);
        for chunk in [4096usize, 1 << 20] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &medium,
                Format::GeoJson,
                chunk,
                &full_queries(80),
                &format!("geojson/{mode:?}"),
            );
        }
    }
}

#[test]
fn streaming_differential_wkt_across_modes_and_chunks() {
    for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
        let small = bytes_for(Format::Wkt, 23, 8);
        for chunk in [1usize, 7] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &small,
                Format::Wkt,
                chunk,
                &full_queries(8),
                &format!("wkt/{mode:?}"),
            );
        }
        let medium = bytes_for(Format::Wkt, 24, 80);
        for chunk in [4096usize, 1 << 20] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &medium,
                Format::Wkt,
                chunk,
                &full_queries(80),
                &format!("wkt/{mode:?}"),
            );
        }
    }
}

#[test]
fn streaming_differential_xml_across_modes_and_chunks() {
    // XML ingests into the stream buffer and parses at seal (global
    // node table), so the differential here proves the buffering path
    // and chunk reassembly, entity boundaries included.
    for mode in [Mode::Pat, Mode::Fat, Mode::Adaptive] {
        let small = bytes_for(Format::OsmXml, 25, 8);
        for chunk in [1usize, 7] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &small,
                Format::OsmXml,
                chunk,
                &full_queries(8),
                &format!("xml/{mode:?}"),
            );
        }
        let medium = bytes_for(Format::OsmXml, 26, 60);
        for chunk in [4096usize, 1 << 20] {
            assert_streamed_equals_buffered(
                &engine(2, mode),
                &medium,
                Format::OsmXml,
                chunk,
                &full_queries(60),
                &format!("xml/{mode:?}"),
            );
        }
    }
}

#[test]
fn streaming_batch_differential_across_threads() {
    let bytes = bytes_for(Format::GeoJson, 27, 70);
    let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
    let queries = full_queries(70);
    for threads in [1usize, 2, 8] {
        for mode in [Mode::Pat, Mode::Fat] {
            let e = engine(threads, mode);
            let want = e.execb(&queries, &ds).unwrap();
            let mut source = SliceChunkSource::new(&bytes, 2048);
            let (got, stats, _) = e
                .streamb_timed(&queries, &mut source, Format::GeoJson)
                .unwrap();
            assert_eq!(got, want, "threads={threads} mode={mode:?}");
            assert_eq!(stats.scan_passes, 1);
        }
    }
}

#[test]
fn streamed_fragment_memory_is_bounded_by_workers_not_chunks() {
    // Many chunks (hundreds of regions), few workers: the merger's
    // peak live fragments must track the worker count, not the chunk
    // count — the bounded-memory tentpole claim, observable.
    let bytes = bytes_for(Format::GeoJson, 28, 300);
    let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    for threads in [1usize, 2, 8] {
        let e = engine(threads, Mode::Pat);
        let mut source = SliceChunkSource::new(&bytes, 1024);
        let (_, _, sstats) = e
            .streamb_timed(std::slice::from_ref(&world), &mut source, Format::GeoJson)
            .unwrap();
        assert!(
            sstats.chunks as usize > 4 * threads,
            "need many more chunks than workers for the bound to mean anything"
        );
        // Bound: one fragment per contiguous run (≤ in-flight tasks
        // + 1) plus one detached fragment per worker mid-merge —
        // O(workers) either way, never O(chunks).
        assert!(
            sstats.peak_fragments <= 2 * threads as u64 + 2,
            "threads={threads}: peak {} fragments for {} chunks / {} regions",
            sstats.peak_fragments,
            sstats.chunks,
            sstats.regions
        );
    }
}

#[test]
fn streaming_channel_feed_with_empty_chunks_and_empty_final_chunk() {
    let bytes = bytes_for(Format::GeoJson, 29, 30);
    let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
    let e = engine(2, Mode::Pat);
    let q = Query::aggregation(Mbr::new(-11.0, 39.0, 11.0, 61.0));
    let want = e.exec1(&q, &ds).unwrap();

    let (tx, mut rx) = chunk_channel(4);
    let feed = bytes.clone();
    let producer = std::thread::spawn(move || {
        tx.send(Vec::new()).unwrap(); // leading empty chunk
        for chunk in feed.chunks(997) {
            tx.send(chunk.to_vec()).unwrap();
        }
        tx.send(Vec::new()).unwrap(); // empty chunk exactly at EOF
                                      // dropping tx ends the stream
    });
    let got = e.stream1(&q, &mut rx, Format::GeoJson).unwrap();
    producer.join().unwrap();
    assert_eq!(got, want);
}

#[test]
fn streaming_empty_input_matches_buffered_empty() {
    let e = engine(2, Mode::Pat);
    let q = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let empty = Dataset::from_bytes(Vec::new(), Format::Wkt);
    let want = e.exec1(&q, &empty).unwrap();
    let mut source = SliceChunkSource::new(&[], 4);
    let got = e.stream1(&q, &mut source, Format::Wkt).unwrap();
    assert_eq!(got, want);
    assert_eq!(got, QueryResult::Matches(Vec::new()));
}

// ---------------------------------------------------------------------
// Boundary torture: every split point of crafted inputs whose bytes
// contain the structures a chunk boundary could tear apart.
// ---------------------------------------------------------------------

/// Sweeps *every* chunk length over the input, so some chunk boundary
/// lands on every byte position — inside markers, escapes, numbers
/// and entities alike.
fn sweep_all_chunk_lengths(bytes: &[u8], format: Format, modes: &[Mode]) {
    let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let agg = Query::aggregation(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    for &mode in modes {
        let e = engine(2, mode);
        let ds = Dataset::from_bytes(bytes.to_vec(), format);
        let want_w = e.exec1(&world, &ds).unwrap();
        let want_a = e.exec1(&agg, &ds).unwrap();
        assert!(
            !want_w.matches().is_empty(),
            "torture input must select features ({format:?})"
        );
        for chunk_len in 1..=bytes.len() {
            let mut s = SliceChunkSource::new(bytes, chunk_len);
            let got_w = e.stream1(&world, &mut s, format).unwrap();
            assert_eq!(got_w, want_w, "{format:?}/{mode:?} chunk={chunk_len}");
            let mut s = SliceChunkSource::new(bytes, chunk_len);
            let got_a = e.stream1(&agg, &mut s, format).unwrap();
            assert_eq!(got_a, want_a, "{format:?}/{mode:?} agg chunk={chunk_len}");
        }
    }
}

#[test]
fn torture_geojson_chunk_splits_inside_utf8_escapes_and_markers() {
    // Properties carry \u escapes, escaped quotes and brace noise; a
    // sweep over every chunk length puts a boundary inside the
    // `{"type":"Feature"` marker, the `é` escape and the
    // coordinate numbers.
    let doc = concat!(
        r#"{"type":"FeatureCollection","features":["#,
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[1.25,50.5]},"id":1,"properties":{"name":"café \"bar\" {[,:]}"}},"#,
        r#"{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0.5,49.5],[2.5,49.5],[2.5,51.5],[0.5,51.5],[0.5,49.5]]]},"id":2,"properties":{"note":"ümläut"}},"#,
        r#"{"type":"Feature","geometry":{"type":"Point","coordinates":[-3.0e0,5.05E1]},"id":3,"properties":{}}"#,
        r#"]}"#
    )
    .as_bytes()
    .to_vec();
    sweep_all_chunk_lengths(&doc, Format::GeoJson, &[Mode::Pat, Mode::Fat]);
}

#[test]
fn torture_wkt_chunk_splits_inside_numbers() {
    // Long fractional digits and exponents: chunk boundaries land
    // inside every number. Rows end without a trailing newline on the
    // final record, so EOF is also a mid-row boundary for the tail.
    let doc = b"1\tPOINT(1.2345678 50.8765432)\t\n\
2\tPOLYGON((0.1234567 49.7654321,2.5 49.5,2.5 51.5,0.1234567 49.7654321))\tname=a\n\
3\tLINESTRING(-1.25 50.125,-0.5 50.5)\t\n\
4\tPOINT(-3.5 50.5)\t"
        .to_vec();
    sweep_all_chunk_lengths(&doc, Format::Wkt, &[Mode::Pat, Mode::Fat]);
}

#[test]
fn torture_xml_chunk_splits_inside_entities() {
    // Tag values hold XML entities (&amp; &quot; &lt;); the sweep puts
    // chunk boundaries inside each entity and inside element tags.
    let doc = concat!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n",
        "<osm version=\"0.6\" generator=\"atgis-datagen\">\n",
        " <node id=\"1000\" lat=\"50.5\" lon=\"1.5\"/>\n",
        " <node id=\"1001\" lat=\"50.625\" lon=\"1.625\"/>\n",
        " <node id=\"1002\" lat=\"50.75\" lon=\"1.5\"/>\n",
        " <node id=\"7\" lat=\"50.9876543\" lon=\"1.1234567\"/>\n",
        " <way id=\"1\"><nd ref=\"1000\"/><nd ref=\"1001\"/><nd ref=\"1002\"/><nd ref=\"1000\"/>",
        "<tag k=\"name\" v=\"caf&amp; &quot;bar&quot; &lt;x\"/></way>\n",
        "</osm>\n"
    )
    .as_bytes()
    .to_vec();
    sweep_all_chunk_lengths(&doc, Format::OsmXml, &[Mode::Pat, Mode::Fat]);
}

#[test]
fn torture_eof_exactly_at_marker_boundary() {
    // The stream ends exactly where a new feature marker would start:
    // the PAT tail dispatch must handle a final region that is pure
    // wrapper, and a truncated-free prefix that is the whole input.
    let gen = OsmGenerator::new(31).generate(6);
    let bytes = write_geojson(&gen);
    let e = engine(2, Mode::Pat);
    let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
    let world = Query::containment(Mbr::new(-180.0, -90.0, 180.0, 90.0));
    let want = e.exec1(&world, &ds).unwrap();
    // Chunk lengths engineered so chunk boundaries hit every marker
    // position at least once across the runs.
    let marker = b"{\"type\":\"Feature\"";
    let mut marker_positions = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = bytes[at..]
        .windows(marker.len())
        .position(|w| w == marker)
        .map(|p| p + at)
    {
        marker_positions.push(pos);
        at = pos + 1;
    }
    assert!(marker_positions.len() > 3);
    for &pos in &marker_positions[1..] {
        // First chunk ends exactly at the marker start.
        let mut s = TwoChunkSource::new(&bytes, pos);
        let got = e.stream1(&world, &mut s, Format::GeoJson).unwrap();
        assert_eq!(got, want, "split at marker offset {pos}");
    }
}

/// Splits the input at one exact position — chunk one is `[0, split)`,
/// chunk two the rest.
struct TwoChunkSource<'a> {
    data: &'a [u8],
    split: usize,
    state: u8,
}

impl<'a> TwoChunkSource<'a> {
    fn new(data: &'a [u8], split: usize) -> Self {
        TwoChunkSource {
            data,
            split,
            state: 0,
        }
    }
}

impl atgis::ChunkSource for TwoChunkSource<'_> {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        self.state += 1;
        Ok(match self.state {
            1 => Some(self.data[..self.split].to_vec()),
            2 => Some(self.data[self.split..].to_vec()),
            _ => None,
        })
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.data.len())
    }
}

#[test]
fn streaming_file_source_matches_in_memory() {
    let bytes = bytes_for(Format::GeoJson, 33, 50);
    let path =
        std::env::temp_dir().join(format!("atgis_stream_diff_{}.geojson", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let e = engine(2, Mode::Pat);
    let ds = Dataset::from_bytes(bytes.clone(), Format::GeoJson);
    let q = Query::join(25);
    let want = e.exec1(&q, &ds).unwrap();
    let mut source = atgis::FileChunkSource::open_with_chunk_len(&path, 1500).unwrap();
    let got = e.stream1(&q, &mut source, Format::GeoJson).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(got, want);
}
