//! Cross-crate verification of the Table 1 operator catalogue: every
//! operator's semantics checked against independent geometric
//! reasoning, plus the associativity claims verified by executing the
//! operators through the transducer classes they map to.

use atgis::operators::{PropertyValue, SpatialOperator};
use atgis_geometry::relate::EdgeRelateState;
use atgis_geometry::{hull, Geometry, Mbr, Point, Polygon};
use atgis_transducer::flushing::{FlushAggregate, PftFragment};
use atgis_transducer::{merge::merge_tree, Mergeable};

fn square(x: f64, y: f64, s: f64) -> Geometry {
    Geometry::Polygon(Polygon::from_mbr(&Mbr::new(x, y, x + s, y + s)))
}

#[test]
fn predicate_truth_table() {
    use SpatialOperator::*;
    let a = square(0.0, 0.0, 2.0);
    let overlapping = square(1.0, 1.0, 2.0);
    let touching = square(2.0, 0.0, 1.0);
    let inside = square(0.5, 0.5, 0.5);
    let far = square(10.0, 10.0, 1.0);

    // (operator, other, expected)
    let cases = [
        (Intersects, &overlapping, true),
        (Intersects, &touching, true),
        (Intersects, &inside, true),
        (Intersects, &far, false),
        (Disjoint, &far, true),
        (Disjoint, &overlapping, false),
        (Touches, &touching, true),
        (Touches, &overlapping, false),
        (Touches, &far, false),
        (Overlaps, &overlapping, true),
        (Overlaps, &inside, false),
        (Overlaps, &touching, false),
        (Contains, &inside, true),
        (Contains, &overlapping, false),
        (Within, &inside, false), // a is not within inside
    ];
    for (op, other, expect) in cases {
        assert_eq!(
            op.evaluate_predicate(&a, other),
            Some(expect),
            "{} vs {:?}",
            op.name(),
            other.mbr()
        );
    }
    assert_eq!(
        SpatialOperator::Within.evaluate_predicate(&inside, &a),
        Some(true)
    );
}

#[test]
fn envelope_equals_mbr_polygon() {
    let g = Geometry::Polygon(Polygon::from_exterior(vec![
        Point::new(0.0, 0.0),
        Point::new(3.0, 1.0),
        Point::new(1.0, 4.0),
    ]));
    match SpatialOperator::Envelope.evaluate_property(&g) {
        Some(PropertyValue::Geometry(env)) => {
            assert_eq!(env.mbr(), g.mbr());
            assert_eq!(env.area(), g.mbr().area());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn convex_hull_property_contains_geometry() {
    let g = Geometry::Polygon(Polygon::from_exterior(vec![
        Point::new(0.0, 0.0),
        Point::new(4.0, 0.0),
        Point::new(2.0, 1.0), // concavity
        Point::new(4.0, 4.0),
        Point::new(0.0, 4.0),
    ]));
    match SpatialOperator::ConvexHull.evaluate_property(&g) {
        Some(PropertyValue::Geometry(hull_geom)) => {
            for p in g.points() {
                assert!(hull_geom.contains_point(&p));
            }
            assert!(hull_geom.area() >= g.area());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn set_ops_satisfy_algebraic_identities() {
    let a = Polygon::from_mbr(&Mbr::new(0.0, 0.0, 2.0, 2.0));
    let b = Polygon::from_mbr(&Mbr::new(1.0, 1.0, 3.0, 3.0));
    let area = |g: &Geometry| g.area();
    let inter = SpatialOperator::Intersection
        .evaluate_setop(&a, &b)
        .unwrap();
    let uni = SpatialOperator::Union.evaluate_setop(&a, &b).unwrap();
    let diff = SpatialOperator::Difference.evaluate_setop(&a, &b).unwrap();
    let sym = SpatialOperator::SymDifference
        .evaluate_setop(&a, &b)
        .unwrap();
    assert!((area(&inter) - 1.0).abs() < 1e-9);
    assert!((area(&uni) - 7.0).abs() < 1e-9);
    assert!((area(&diff) - 3.0).abs() < 1e-9);
    assert!((area(&sym) - 6.0).abs() < 1e-9);
    // |A ∪ B| = |A| + |B| − |A ∩ B|; |AΔB| = |A∪B| − |A∩B|.
    assert!((area(&uni) - (4.0 + 4.0 - area(&inter))).abs() < 1e-9);
    assert!((area(&sym) - (area(&uni) - area(&inter))).abs() < 1e-9);
}

/// The "in shape" associativity claim for ST_Envelope: MBR bounding
/// over a PFT with flush = geometry boundary, split anywhere inside a
/// shape.
struct MbrBounder;

impl FlushAggregate for MbrBounder {
    type Sym = Point;
    type State = MbrState;
    type Out = Mbr;
    fn absorb(state: &mut MbrState, sym: &Point) {
        state.0.expand(*sym);
    }
    fn finish(state: MbrState) -> Option<Mbr> {
        (!state.0.is_empty()).then_some(state.0)
    }
}

#[derive(Clone, Debug, PartialEq)]
struct MbrState(Mbr);

impl Mergeable for MbrState {
    fn identity() -> Self {
        MbrState(Mbr::EMPTY)
    }
    fn merge(self, other: Self) -> Self {
        MbrState(self.0.union(&other.0))
    }
}

#[test]
fn st_envelope_as_pft_is_split_invariant_inside_shapes() {
    // Three geometries of 5/3/4 points, flushed by NaN markers; split
    // the symbol stream at every position and check the MBR outputs
    // never change — the "in shape" associativity of Table 1.
    let flush = Point::new(f64::NAN, f64::NAN);
    let mut syms: Vec<Point> = Vec::new();
    let push_shape = |pts: &[(f64, f64)], syms: &mut Vec<Point>| {
        for &(x, y) in pts {
            syms.push(Point::new(x, y));
        }
        syms.push(flush);
    };
    push_shape(
        &[(0., 0.), (1., 0.), (1., 1.), (0., 1.), (0.5, 2.)],
        &mut syms,
    );
    push_shape(&[(5., 5.), (6., 5.), (6., 7.)], &mut syms);
    push_shape(&[(-3., 0.), (-1., 0.), (-1., -2.), (-3., -2.)], &mut syms);

    let is_flush = |p: &Point| p.x.is_nan();
    let whole = PftFragment::<MbrBounder>::from_block(&syms, is_flush).finalize();
    assert_eq!(whole.len(), 3);
    assert_eq!(whole[0], Mbr::new(0.0, 0.0, 1.0, 2.0));
    assert_eq!(whole[1], Mbr::new(5.0, 5.0, 6.0, 7.0));
    assert_eq!(whole[2], Mbr::new(-3.0, -2.0, -1.0, 0.0));

    for cut in 0..=syms.len() {
        let (l, r) = syms.split_at(cut);
        let merged = PftFragment::<MbrBounder>::from_block(l, is_flush)
            .merge(PftFragment::<MbrBounder>::from_block(r, is_flush))
            .finalize();
        assert_eq!(merged, whole, "split at {cut}");
    }
    // And a many-way split merged as a tree.
    let frags: Vec<_> = syms
        .chunks(2)
        .map(|c| PftFragment::<MbrBounder>::from_block(c, is_flush))
        .collect();
    assert_eq!(merge_tree(frags).finalize(), whole);
}

#[test]
fn st_convexhull_merge_is_the_hull_of_partial_hulls() {
    // The Table 1 "shape" processing state for ST_ConvexHull: merging
    // two partial hulls by hulling their union.
    let pts: Vec<Point> = (0..200)
        .map(|i| Point::new(((i * 37) % 101) as f64, ((i * 61) % 97) as f64))
        .collect();
    let direct = hull::convex_hull(&pts);
    for cut in [1, 50, 100, 199] {
        let (a, b) = pts.split_at(cut);
        let merged = hull::merge_hulls(&hull::convex_hull(a), &hull::convex_hull(b));
        assert_eq!(merged.area(), direct.area(), "cut={cut}");
    }
}

#[test]
fn st_intersects_edge_state_is_order_insensitive() {
    // The Bool×Bool PFT state of the relation operators: fold the
    // edges of a streamed polygon in two different block orders.
    let reference = Polygon::from_mbr(&Mbr::new(0.0, 0.0, 2.0, 2.0));
    let streamed = Polygon::from_exterior(vec![
        Point::new(1.0, 1.0),
        Point::new(5.0, 1.0),
        Point::new(5.0, 5.0),
        Point::new(1.0, 5.0),
    ]);
    let edges: Vec<_> = streamed.all_segments().collect();
    for cut in 0..edges.len() {
        let mut left = EdgeRelateState::default();
        for e in &edges[..cut] {
            left.process_edge(e, &reference);
        }
        let mut right = EdgeRelateState::default();
        for e in &edges[cut..] {
            right.process_edge(e, &reference);
        }
        let merged = left.merge(&right);
        assert!(merged.finish_intersects(&streamed, &reference), "cut={cut}");
    }
}

#[test]
fn relate_matrix_consistent_with_predicates() {
    let a = square(0.0, 0.0, 2.0);
    for (other, pattern_should_match) in [
        (square(1.0, 1.0, 2.0), "T********"),  // interiors intersect
        (square(10.0, 0.0, 1.0), "FF*FF****"), // disjoint
    ] {
        let m = atgis_geometry::relate(&a, &other);
        assert!(
            m.matches(pattern_should_match),
            "{} should match {pattern_should_match}",
            m.to_de9im_string()
        );
    }
}
